"""Content-addressed persistence of derived analysis artifacts.

PR 2 made the §6 linking consumers array-native, which left the *builds*
— column interning, the CSR observation index, the interval arrays, the
feature matrix, and the §4.2 chain walks — as the dominant cost of every
run over the same immutable corpus.  This module is the warm path: an
:class:`ArtifactCache` persists those derived artifacts in one ``.rpa``
file per corpus, keyed by a **streaming corpus digest**, so a warm
:class:`~repro.study.Study` run loads them in O(read) and skips the
kernel builds and the chain walks entirely.

Digest scheme (the cache key):

* :class:`~repro.io.backends.ArchiveBackend` corpora hash the archive
  **file bytes** (SHA-256, streamed in chunks — the ``.rpz`` is the
  corpus' identity, nothing needs parsing);
* in-memory corpora hash a **canonical columnar encoding**: per-scan
  (day, source) metadata, the five observation columns as little-endian
  bytes, the interning tables, and the sorted fingerprint list of the
  certificate table.  Fingerprints are SHA-256 over DER, so certificate
  *content* is covered transitively.

Both schemes are independent of ``PYTHONHASHSEED`` and of the platform
byte order (columns are serialized little-endian everywhere).

File layout — ``<digest>.rpa`` is a ZIP archive (stored, not deflated:
cache files trade disk for load latency) with members:

* ``manifest.json`` — :data:`ARTIFACT_SCHEMA`, the corpus digest, corpus
  counts, and the section list;
* ``columns.pkl``   — the five observation columns and interning tables
  (arrays as ``(typecode, little-endian bytes)`` pairs; fingerprints as
  one flat 32-byte-stride blob).  Kept separate because a loader whose
  dataset is already columnar skips these bytes — they dominate the file;
* ``kernels.pkl``   — the CSR index, interval arrays, and feature matrix
  (together with ``columns.pkl`` this is the manifest's ``kernels``
  section);
* ``validation.pkl`` — per-certificate verdicts, columnar: interned
  status/detail tables, per-record id columns, a flat chain-fingerprint
  blob with per-record lengths, plus the DER of chain members that are
  not corpus certificates (roots), gated by a digest of the trust store.

Any failure to read, decode, or sanity-check an artifact — truncation,
a schema bump, a digest mismatch, a foreign byte order — degrades to a
rebuild, never to an error; counters ``artifacts.hit`` / ``miss`` /
``invalidated`` (one per requested section) record which way each load
went.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import struct
import sys
import zipfile
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Union

from ..obs import runtime as obs
from ..scanner.columns import CertIntervals, ObservationColumns, ObservationIndex
from ..tls.handshake import HandshakeRecord
from ..x509.certificate import Certificate

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.validation import ValidationReport
    from ..scanner.dataset import ScanDataset
    from ..x509.truststore import TrustStore

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "LoadedArtifacts",
    "columns_digest",
    "trust_store_digest",
]

#: Bump on any change to the artifact payload encoding; older files are
#: invalidated (fall back to a rebuild), never misread.
ARTIFACT_SCHEMA = 1

#: Streaming chunk size for archive-byte digests.
_CHUNK = 1 << 20

_META = struct.Struct("<II")
_SCAN = struct.Struct("<iI")

#: Certificate fingerprints are SHA-256 over DER — always 32 bytes, so
#: fingerprint sequences serialize as one flat blob sliced on decode.
_FP_LEN = 32


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def _le_bytes(column: array) -> bytes:
    """A column's raw bytes, little-endian regardless of the host."""
    if sys.byteorder == "little":
        return column.tobytes()
    swapped = array(column.typecode, column)
    swapped.byteswap()
    return swapped.tobytes()


def _le_view(column: array):
    """Zero-copy little-endian view for hashing (copies only on BE hosts)."""
    if sys.byteorder == "little":
        return memoryview(column)
    return _le_bytes(column)


def file_digest(path: Union[str, pathlib.Path]) -> str:
    """Streaming SHA-256 over a corpus archive's bytes."""
    digest = hashlib.sha256(b"repro-archive/1\n")
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def columns_digest(
    columns: ObservationColumns,
    scan_meta: Sequence[tuple[int, str]],
    certificates: Mapping[bytes, Certificate],
) -> str:
    """Canonical digest of an in-memory corpus.

    Hashes the (day, source) scan metadata, every observation column as
    little-endian bytes, the interning tables, and the **sorted** full
    certificate-fingerprint list (covering unobserved certificates, and
    making the digest independent of certificate-dict insertion order).
    """
    digest = hashlib.sha256(b"repro-corpus/1\n")
    digest.update(_META.pack(len(scan_meta), len(certificates)))
    for day, source in scan_meta:
        encoded = source.encode("utf-8")
        digest.update(_SCAN.pack(day, len(encoded)))
        digest.update(encoded)
    for column in (columns.scan_idx, columns.ip, columns.cert_id,
                   columns.entity_id, columns.handshake_id):
        digest.update(_le_view(column))
    digest.update(b"".join(columns.fingerprints))
    digest.update(json.dumps(columns.entities, separators=(",", ":")).encode())
    digest.update(
        json.dumps(
            [list(record) for record in columns.handshakes],
            separators=(",", ":"),
        ).encode()
    )
    digest.update(b"".join(sorted(certificates)))
    return digest.hexdigest()


def trust_store_digest(trust_store: "TrustStore") -> str:
    """Digest of a trust store: SHA-256 over its sorted root fingerprints.

    Gates only the ``validation`` section — the kernel artifacts are pure
    functions of the corpus and stay loadable under any trust store.
    """
    digest = hashlib.sha256(b"repro-trust/1\n")
    for fingerprint in sorted(root.fingerprint for root in trust_store):
        digest.update(fingerprint)
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Array / payload encoding (PYTHONHASHSEED- and endianness-independent)
# ---------------------------------------------------------------------------

def _pack_array(column: array) -> tuple[str, bytes]:
    return column.typecode, _le_bytes(column)


def _unpack_array(packed: tuple[str, bytes]) -> array:
    typecode, blob = packed
    column = array(typecode)
    column.frombytes(blob)
    if sys.byteorder != "little":
        column.byteswap()
    return column


def _pack_fingerprints(fingerprints: Sequence[bytes]) -> bytes:
    """A fingerprint sequence as one flat 32-byte-stride blob.

    One large pickle object instead of tens of thousands of small ones —
    the dominant cost of a warm load is object construction, not bytes.
    """
    blob = b"".join(fingerprints)
    if len(blob) != _FP_LEN * len(fingerprints):
        raise ValueError("non-canonical fingerprint length")
    return blob


def _unpack_fingerprints(blob: bytes) -> list[bytes]:
    if len(blob) % _FP_LEN:
        raise ValueError("fingerprint blob not a digest-size multiple")
    return [blob[base:base + _FP_LEN] for base in range(0, len(blob), _FP_LEN)]


def _encode_columns(columns: ObservationColumns) -> dict:
    """The observation columns, as their own (large) payload.

    Kept in a separate archive member from the other kernels: a loader
    whose dataset is already columnar (an :class:`InMemoryBackend`
    corpus) skips these bytes entirely — they dominate the artifact.
    """
    return {
        "scan_idx": _pack_array(columns.scan_idx),
        "ip": _pack_array(columns.ip),
        "cert_id": _pack_array(columns.cert_id),
        "entity_id": _pack_array(columns.entity_id),
        "handshake_id": _pack_array(columns.handshake_id),
        "fingerprints": _pack_fingerprints(columns.fingerprints),
        "entities": list(columns.entities),
        "handshakes": [tuple(record) for record in columns.handshakes],
    }


def _encode_kernels(
    index: ObservationIndex,
    intervals: CertIntervals,
    matrix,
) -> dict:
    from ..core.features import Feature

    return {
        "index": {
            "offsets": _pack_array(index._offsets),
            "order": _pack_array(index._order),
        },
        "intervals": {
            name: _pack_array(getattr(intervals, name))
            for name in CertIntervals.__slots__
        },
        "matrix": {
            "fingerprints": _pack_fingerprints(matrix.fingerprints),
            "values": {
                feature.name: list(matrix.values[feature]) for feature in Feature
            },
            "raw_ids": {
                feature.name: _pack_array(matrix.raw_ids[feature])
                for feature in Feature
            },
            "cn_linkable": _pack_array(
                matrix.linkable_ids[Feature.COMMON_NAME]
            ),
        },
    }


def _decode_columns(payload: dict) -> ObservationColumns:
    columns = ObservationColumns()
    columns.scan_idx = _unpack_array(payload["scan_idx"])
    columns.ip = _unpack_array(payload["ip"])
    columns.cert_id = _unpack_array(payload["cert_id"])
    columns.entity_id = _unpack_array(payload["entity_id"])
    columns.handshake_id = _unpack_array(payload["handshake_id"])
    columns.fingerprints = _unpack_fingerprints(payload["fingerprints"])
    columns.fingerprint_ids = {
        fingerprint: cert_id
        for cert_id, fingerprint in enumerate(columns.fingerprints)
    }
    columns.entities = payload["entities"]  # fresh list, pickle-owned
    columns.handshakes = [
        HandshakeRecord(*record) for record in payload["handshakes"]
    ]
    return columns


def _decode_index(
    columns: ObservationColumns, payload: dict
) -> ObservationIndex:
    index = ObservationIndex.__new__(ObservationIndex)
    index.columns = columns
    index._offsets = _unpack_array(payload["offsets"])
    index._order = _unpack_array(payload["order"])
    if len(index._offsets) != len(columns.fingerprints) + 1 \
            or len(index._order) != len(columns):
        raise ValueError("artifact index shape mismatch")
    return index


def _decode_intervals(payload: dict, n_certs: int) -> CertIntervals:
    intervals = CertIntervals.__new__(CertIntervals)
    for name in CertIntervals.__slots__:
        column = _unpack_array(payload[name])
        if len(column) != n_certs:
            raise ValueError("artifact intervals shape mismatch")
        setattr(intervals, name, column)
    return intervals


def _decode_matrix(payload: dict, certificates: Mapping[bytes, Certificate]):
    """Rebuild the feature matrix, re-ordering rows to the loader's
    certificate-dict order when it differs from the writer's (the digest
    pins the certificate *set*, not the dict insertion order)."""
    from ..core.kernels import FeatureMatrix
    from ..core.features import Feature

    stored = _unpack_fingerprints(payload["fingerprints"])
    wanted = list(certificates)
    raw = {
        feature: _unpack_array(payload["raw_ids"][feature.name])
        for feature in Feature
    }
    cn_linkable = _unpack_array(payload["cn_linkable"])
    if stored != wanted:
        if sorted(stored) != sorted(wanted):
            raise ValueError("artifact certificate set mismatch")
        stored_row = {fp: row for row, fp in enumerate(stored)}
        perm = [stored_row[fp] for fp in wanted]
        raw = {
            feature: array("i", (column[row] for row in perm))
            for feature, column in raw.items()
        }
        cn_linkable = array("i", (cn_linkable[row] for row in perm))
    for column in raw.values():
        if len(column) != len(wanted):
            raise ValueError("artifact matrix shape mismatch")
    matrix = FeatureMatrix()
    matrix.fingerprints = wanted
    matrix.rows = {fp: row for row, fp in enumerate(wanted)}
    matrix.values = {  # fresh pickle-owned lists, no copy needed
        feature: payload["values"][feature.name] for feature in Feature
    }
    matrix.raw_ids = raw
    matrix.linkable_ids = dict(raw)
    matrix.linkable_ids[Feature.COMMON_NAME] = cn_linkable
    return matrix


def _encode_validation(
    report: "ValidationReport",
    dataset: "ScanDataset",
    trust_store: "TrustStore",
) -> dict:
    """Columnar verdict encoding: the distinct (status, detail) space is
    tiny (a handful of failure classes), so per-certificate state is two
    id columns plus a flat chain-fingerprint blob with per-record
    lengths — not tens of thousands of record tuples."""
    statuses: list[str] = []
    status_ids: dict[str, int] = {}
    details: list[str] = []
    detail_ids: dict[str, int] = {}
    fingerprints: list[bytes] = []
    record_status = array("B")
    record_detail = array("I")
    chain_lens = array("B")
    chain_fps: list[bytes] = []
    extra_der: dict[bytes, bytes] = {}
    for fingerprint, result in report.results.items():
        fingerprints.append(fingerprint)
        status_id = status_ids.setdefault(result.status.value, len(statuses))
        if status_id == len(statuses):
            statuses.append(result.status.value)
        detail_id = detail_ids.setdefault(result.detail, len(details))
        if detail_id == len(details):
            details.append(result.detail)
        record_status.append(status_id)
        record_detail.append(detail_id)
        chain_lens.append(len(result.chain))
        for link in result.chain:
            chain_fps.append(link.fingerprint)
            if link.fingerprint not in dataset.certificates \
                    and link.fingerprint not in extra_der:
                extra_der[link.fingerprint] = link.to_der()
    return {
        "trust_digest": trust_store_digest(trust_store),
        "fingerprints": _pack_fingerprints(fingerprints),
        "statuses": statuses,
        "details": details,
        "status_ids": _pack_array(record_status),
        "detail_ids": _pack_array(record_detail),
        "chain_lens": _pack_array(chain_lens),
        "chain_fps": _pack_fingerprints(chain_fps),
        "extra_der": extra_der,
    }


def _decode_validation(
    payload: dict,
    dataset: "ScanDataset",
    trust_store: "TrustStore",
) -> "ValidationReport":
    from ..core.validation import ValidationReport
    from ..x509.chain import VerifyResult, VerifyStatus

    roots = {root.fingerprint: root for root in trust_store}
    extra_der = payload["extra_der"]
    parsed: dict[bytes, Certificate] = {}

    def resolve(fingerprint: bytes) -> Certificate:
        cert = dataset.certificates.get(fingerprint) or roots.get(fingerprint) \
            or parsed.get(fingerprint)
        if cert is None:
            cert = parsed[fingerprint] = Certificate.from_der(
                extra_der[fingerprint]
            )
        return cert

    status_table = [VerifyStatus(value) for value in payload["statuses"]]
    details = payload["details"]
    fingerprints = _unpack_fingerprints(payload["fingerprints"])
    status_ids = _unpack_array(payload["status_ids"])
    detail_ids = _unpack_array(payload["detail_ids"])
    chain_lens = _unpack_array(payload["chain_lens"])
    chain_fps = _unpack_fingerprints(payload["chain_fps"])
    if not (len(fingerprints) == len(status_ids) == len(detail_ids)
            == len(chain_lens)):
        raise ValueError("artifact validation shape mismatch")
    # ``VerifyResult`` is frozen, so chainless verdicts — the bulk of the
    # corpus — share one instance per distinct (status, detail) pair.
    chainless: dict[tuple[int, int], VerifyResult] = {}
    # Which report bucket each status lands in (``is_valid`` and the
    # disregarded set are pure functions of the status).
    valid: set[bytes] = set()
    invalid: set[bytes] = set()
    disregarded: set[bytes] = set()
    buckets = [
        disregarded if status is VerifyStatus.MALFORMED
        else (valid if status.is_valid else invalid)
        for status in status_table
    ]
    results = {}
    position = 0
    rows = zip(fingerprints, status_ids, detail_ids, chain_lens)
    for fingerprint, status_id, detail_id, length in rows:
        if length:
            chain = tuple(
                resolve(fp) for fp in chain_fps[position:position + length]
            )
            position += length
            result = VerifyResult(
                status=status_table[status_id],
                chain=chain,
                detail=details[detail_id],
            )
        else:
            key = (status_id, detail_id)
            result = chainless.get(key)
            if result is None:
                result = chainless[key] = VerifyResult(
                    status=status_table[status_id],
                    detail=details[detail_id],
                )
        results[fingerprint] = result
        buckets[status_id].add(fingerprint)
    if position != len(chain_fps):
        raise ValueError("artifact validation chain blob mismatch")
    if results.keys() != dataset.certificates.keys():
        raise ValueError("artifact validation set mismatch")
    return ValidationReport(
        results=results, valid=valid, invalid=invalid, disregarded=disregarded
    )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class LoadedArtifacts:
    """What one :meth:`ArtifactCache.load` satisfied."""

    #: True when columns, index, intervals, and matrix were all installed.
    kernels: bool = False
    #: The reconstructed §4.2 report, when requested and present.
    validation: Optional["ValidationReport"] = None


class ArtifactCache:
    """Content-addressed on-disk cache of derived analysis artifacts."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.rpa"

    # --- read ----------------------------------------------------------------

    def load(
        self,
        dataset: "ScanDataset",
        trust_store: Optional["TrustStore"] = None,
        workers: int = 1,
    ) -> LoadedArtifacts:
        """Install every cached artifact the corpus digest matches.

        Kernels (columns + index + intervals + matrix) are adopted onto
        ``dataset``; the validation report is returned when
        ``trust_store`` is given and the stored verdicts were produced
        under a trust store with the same digest.  Every requested
        section bumps exactly one of ``artifacts.hit`` / ``miss`` /
        ``invalidated``; any read or decode failure counts as
        invalidated and falls back to a rebuild.
        """
        loaded = LoadedArtifacts()
        n_sections = 2 if trust_store is not None else 1
        digest = dataset.corpus_digest(workers=workers)
        path = self.path_for(digest)
        if not path.exists():
            obs.inc("artifacts.miss", n_sections)
            return loaded
        try:
            with zipfile.ZipFile(path) as archive:
                manifest = json.loads(archive.read("manifest.json"))
                if manifest.get("schema") != ARTIFACT_SCHEMA:
                    raise ValueError(
                        f"artifact schema {manifest.get('schema')!r} != "
                        f"{ARTIFACT_SCHEMA}"
                    )
                if manifest.get("digest") != digest:
                    raise ValueError("artifact digest mismatch")
                members = set(archive.namelist())
                has_kernels = {"kernels.pkl", "columns.pkl"} <= members
                kernels_blob = (
                    archive.read("kernels.pkl") if has_kernels else None
                )
                # The columns member dominates the artifact; a dataset
                # that is already columnar never reads those bytes.
                columns_blob = (
                    archive.read("columns.pkl")
                    if has_kernels and dataset._columns is None else None
                )
                validation_blob = (
                    archive.read("validation.pkl")
                    if trust_store is not None and "validation.pkl" in members
                    else None
                )
        except Exception:
            obs.inc("artifacts.invalidated", n_sections)
            return loaded

        if kernels_blob is None:
            obs.inc("artifacts.miss")
        else:
            try:
                payload = pickle.loads(kernels_blob)
                columns = dataset._columns
                if columns is None:
                    columns = _decode_columns(pickle.loads(columns_blob))
                index = _decode_index(columns, payload["index"])
                intervals = _decode_intervals(
                    payload["intervals"], len(columns.fingerprints)
                )
                matrix = _decode_matrix(
                    payload["matrix"], dataset.certificates
                )
            except Exception:
                obs.inc("artifacts.invalidated")
            else:
                dataset.adopt_kernels(
                    columns=columns, index=index,
                    intervals=intervals, matrix=matrix,
                )
                loaded.kernels = True
                obs.inc("artifacts.hit")

        if trust_store is not None:
            if validation_blob is None:
                obs.inc("artifacts.miss")
            else:
                try:
                    payload = pickle.loads(validation_blob)
                    if payload["trust_digest"] != trust_store_digest(trust_store):
                        # Same corpus, different roots: a miss, not corruption.
                        obs.inc("artifacts.miss")
                    else:
                        loaded.validation = _decode_validation(
                            payload, dataset, trust_store
                        )
                        obs.inc("artifacts.hit")
                except Exception:
                    obs.inc("artifacts.invalidated")
        return loaded

    # --- write ---------------------------------------------------------------

    def store(
        self,
        dataset: "ScanDataset",
        validation: Optional["ValidationReport"] = None,
        trust_store: Optional["TrustStore"] = None,
        workers: int = 1,
    ) -> Optional[pathlib.Path]:
        """Persist whatever artifacts ``dataset`` currently holds.

        The kernels section is written only when all four kernels are
        built; the validation section only when both ``validation`` and
        ``trust_store`` are given.  Sections already in the file that
        this call does not rewrite are preserved, and the file is
        replaced atomically, so a partial writer never corrupts a
        reader.  Returns the artifact path, or None when there was
        nothing to persist.
        """
        digest = dataset.corpus_digest(workers=workers)
        members: dict[str, bytes] = {}
        columns, index, intervals, matrix = dataset.kernel_state
        if columns is not None and index is not None \
                and intervals is not None and matrix is not None:
            members["columns.pkl"] = pickle.dumps(
                _encode_columns(columns), protocol=pickle.HIGHEST_PROTOCOL
            )
            members["kernels.pkl"] = pickle.dumps(
                _encode_kernels(index, intervals, matrix),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        if validation is not None and trust_store is not None:
            members["validation.pkl"] = pickle.dumps(
                _encode_validation(validation, dataset, trust_store),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        if not members:
            return None
        path = self.path_for(digest)
        # Preserve sections an earlier (e.g. validation-only) run stored.
        for name, blob in self._existing_sections(path, digest).items():
            members.setdefault(name, blob)
        sections = []
        if {"kernels.pkl", "columns.pkl"} <= members.keys():
            sections.append("kernels")
        if "validation.pkl" in members:
            sections.append("validation")
        manifest = {
            "schema": ARTIFACT_SCHEMA,
            "digest": digest,
            "byteorder": "little",
            "n_certificates": len(dataset.certificates),
            "n_observations": len(columns) if columns is not None else None,
            "sections": sections,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with zipfile.ZipFile(tmp, "w", compression=zipfile.ZIP_STORED) as archive:
                archive.writestr("manifest.json", json.dumps(manifest, indent=2))
                for name in sorted(members):
                    archive.writestr(name, members[name])
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink()
        return path

    def _existing_sections(
        self, path: pathlib.Path, digest: str
    ) -> dict[str, bytes]:
        """Raw section blobs of a compatible existing artifact, if any."""
        if not path.exists():
            return {}
        try:
            with zipfile.ZipFile(path) as archive:
                manifest = json.loads(archive.read("manifest.json"))
                if manifest.get("schema") != ARTIFACT_SCHEMA \
                        or manifest.get("digest") != digest:
                    return {}
                return {
                    name: archive.read(name)
                    for name in archive.namelist()
                    if name.endswith(".pkl")
                }
        except Exception:
            return {}

    # --- introspection (``repro info``) ---------------------------------------

    def status(self, digest: str) -> dict:
        """Cheap cache-status summary for one corpus digest."""
        path = self.path_for(digest)
        status = {
            "digest": digest,
            "path": str(path),
            "cached": False,
            "sections": [],
            "schema": None,
        }
        if not path.exists():
            return status
        try:
            with zipfile.ZipFile(path) as archive:
                manifest = json.loads(archive.read("manifest.json"))
        except Exception:
            return status
        status["schema"] = manifest.get("schema")
        if manifest.get("schema") == ARTIFACT_SCHEMA \
                and manifest.get("digest") == digest:
            status["cached"] = True
            status["sections"] = list(manifest.get("sections", []))
        return status
