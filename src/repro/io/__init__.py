"""Corpus and environment serialization (.rpz / .rpe archives)."""

from .environment import AnalysisEnvironment, load_environment, save_environment
from .store import FORMAT_VERSION, load_dataset, save_dataset

__all__ = [
    "AnalysisEnvironment",
    "load_environment",
    "save_environment",
    "FORMAT_VERSION",
    "load_dataset",
    "save_dataset",
]
