"""Corpus and environment serialization (.rpz / .rpe archives) and backends."""

from .backends import ArchiveBackend, DatasetBackend, InMemoryBackend
from .environment import AnalysisEnvironment, load_environment, save_environment
from .store import (
    FORMAT_VERSION,
    load_dataset,
    read_certificates,
    read_manifest,
    read_scans,
    save_dataset,
)

__all__ = [
    "AnalysisEnvironment",
    "load_environment",
    "save_environment",
    "ArchiveBackend",
    "DatasetBackend",
    "InMemoryBackend",
    "FORMAT_VERSION",
    "load_dataset",
    "read_certificates",
    "read_manifest",
    "read_scans",
    "save_dataset",
]
