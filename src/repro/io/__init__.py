"""Corpus and environment serialization (.rpz / .rpe archives) and backends."""

from .artifacts import ARTIFACT_SCHEMA, ArtifactCache, LoadedArtifacts
from .backends import ArchiveBackend, DatasetBackend, InMemoryBackend
from .environment import AnalysisEnvironment, load_environment, save_environment
from .store import (
    FORMAT_VERSION,
    StreamingDatasetWriter,
    load_dataset,
    read_certificates,
    read_manifest,
    read_scans,
    save_dataset,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "LoadedArtifacts",
    "AnalysisEnvironment",
    "load_environment",
    "save_environment",
    "ArchiveBackend",
    "DatasetBackend",
    "InMemoryBackend",
    "FORMAT_VERSION",
    "StreamingDatasetWriter",
    "load_dataset",
    "read_certificates",
    "read_manifest",
    "read_scans",
    "save_dataset",
]
