"""Corpus and environment serialization (.rpz / .rpe archives) and backends."""

from .artifacts import ARTIFACT_SCHEMA, ArtifactCache, LoadedArtifacts
from .backends import (
    ArchiveBackend,
    DatasetBackend,
    InMemoryBackend,
    LazyCertificates,
    MappedBackend,
)
from .encoding import SegmentReader, SegmentWriter, is_segment_container
from .split import (
    FleetManifest,
    FleetOwners,
    ShardInfo,
    load_fleet_manifest,
    read_shard_fleet,
    split_corpus,
    verify_fleet,
)
from .environment import AnalysisEnvironment, load_environment, save_environment
from .store import (
    FORMAT_VERSION,
    SUPPORTED_FORMATS,
    AppendResult,
    ShardDrop,
    StreamingDatasetWriter,
    append_shards,
    load_dataset,
    read_certificates,
    read_manifest,
    read_scans,
    read_shard_drop,
    save_dataset,
    save_dataset_v2,
    write_shard_drop,
)
from .watch import DROP_SUFFIX, WatchIngestor

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "LoadedArtifacts",
    "AnalysisEnvironment",
    "load_environment",
    "save_environment",
    "ArchiveBackend",
    "DatasetBackend",
    "InMemoryBackend",
    "LazyCertificates",
    "MappedBackend",
    "SegmentReader",
    "SegmentWriter",
    "is_segment_container",
    "FleetManifest",
    "FleetOwners",
    "ShardInfo",
    "load_fleet_manifest",
    "read_shard_fleet",
    "split_corpus",
    "verify_fleet",
    "FORMAT_VERSION",
    "SUPPORTED_FORMATS",
    "AppendResult",
    "append_shards",
    "StreamingDatasetWriter",
    "load_dataset",
    "read_certificates",
    "read_manifest",
    "read_scans",
    "save_dataset",
    "save_dataset_v2",
    "ShardDrop",
    "write_shard_drop",
    "read_shard_drop",
    "DROP_SUFFIX",
    "WatchIngestor",
]
