"""End-to-end study facade.

:class:`Study` wires the full paper pipeline over one scan corpus:

    scans → validation (§4.2) → comparison analyses (§5)
          → dedup (§6.2) → per-field linking + consistency (§6.3–6.4)
          → iterative pipeline (§6.4.3) → device tracking (§7)

Each stage is computed once and cached; downstream stages pull upstream
ones automatically, so ``study.movement()`` alone runs everything it
needs.  Construct from a synthetic dataset with :meth:`from_synthetic`,
or from any :class:`~repro.scanner.dataset.ScanDataset` plus a trust
store, AS lookup, and registry for real scan corpora.

Every cached stage runs inside a :class:`~repro.obs.trace.Tracer` span,
so a study always carries its own span tree (:attr:`Study.trace`);
:attr:`Study.stage_timings` (stage name → seconds) is a derived view of
that tree kept for benchmark harnesses.  Constructing with
``observe=True`` — or activating :mod:`repro.obs.runtime` globally, e.g.
via ``REPRO_OBS=1`` — additionally turns on the deep instrumentation in
the scan engine, dedup, linking, and kernels, recording into
:attr:`Study.metrics` and the same tracer.  ``workers > 1`` fans the
independent per-feature Table 6 passes out over a process pool; results
(and worker-aggregated metrics) are identical to the serial path.  A
dataset opened from a format 3 container ships to those workers as its
container *path* — each worker re-maps the file, so the fan-out shares
one physical copy of the columns through the page cache instead of
pickling them per process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from .core.consistency import ASLookup
from .core.dedup import DedupResult, classify_unique_certificates
from .core.features import Feature
from .core.pipeline import (
    FeatureEvaluation,
    LifetimeImprovement,
    PipelineResult,
    evaluate_all_features,
    iterative_link,
    lifetime_improvement,
)
from .core.tracking import (
    MovementReport,
    ReassignmentReport,
    TrackableReport,
    TrackedDevice,
    analyze_movement,
    build_tracked_devices,
    infer_reassignment_policies,
    trackable_devices,
)
from .core.validation import ValidationReport, validate_dataset
from .datasets.synthetic import SyntheticDataset
from .net.asn import ASRegistry
from .obs import runtime as obs_runtime
from .obs.metrics import MetricsRegistry
from .obs.trace import Tracer
from .scanner.dataset import ScanDataset
from .x509.truststore import TrustStore

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .io.artifacts import ArtifactCache

__all__ = ["Study"]


class Study:
    """One full reproduction run over a scan corpus."""

    def __init__(
        self,
        dataset: ScanDataset,
        trust_store: TrustStore,
        as_of: ASLookup,
        registry: Optional[ASRegistry] = None,
        workers: int = 1,
        trace: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        observe: bool = False,
        cache: Optional["ArtifactCache"] = None,
        extra_intermediates: Iterable[bytes] = (),
        link_plan: Optional[Iterable[str]] = None,
    ) -> None:
        self.dataset = dataset
        self.trust_store = trust_store
        self.as_of = as_of
        self.registry = registry
        #: Process fan-out for the independent per-feature passes.
        self.workers = workers
        #: Extra intermediate-CA DERs pooled into §4.2 chain building on
        #: top of the corpus's own certificates.  A shard of a split
        #: corpus carries the parent's CA set here so its verdicts match
        #: the parent's exactly (transvalid chains need issuers that may
        #: live on other shards).
        self.extra_intermediates = tuple(extra_intermediates)
        #: Pinned §6.4.3 field order (feature names).  When set — e.g.
        #: from a shard container's ``fleet.link_plan`` — the iterative
        #: pipeline links in exactly this order instead of re-deriving it
        #: from shard-local consistency scores, so shard-local groups are
        #: the global groups restricted to the shard.  An empty tuple
        #: pins "link nothing".
        self.link_plan = (
            None if link_plan is None
            else tuple(Feature(name) for name in link_plan)
        )
        #: The study's span tree; every stage records here.  Adopts the
        #: globally active tracer when one exists, so a CLI run gets one
        #: unified tree covering corpus generation and analysis.
        self.trace = trace if trace is not None else (
            obs_runtime.tracer() or Tracer()
        )
        #: Counters/gauges/histograms of the deep instrumentation
        #: (populated only when :attr:`observe` is on).
        self.metrics = metrics if metrics is not None else (
            obs_runtime.registry() or MetricsRegistry()
        )
        #: When on, stages activate the tracer/registry process-wide so
        #: the instrumentation inside the engine, dedup, linking, and
        #: kernel layers records too (never changes results).
        self.observe = observe or obs_runtime.enabled()
        #: Optional content-addressed artifact cache: when set, kernel
        #: builds and chain validation are loaded from (and persisted
        #: to) disk, keyed by the corpus digest.  Never changes results.
        self.cache = cache
        self._artifacts_attempted = False
        self._kernels_built = False
        self._validation: Optional[ValidationReport] = None
        self._dedup: Optional[DedupResult] = None
        self._evaluations: Optional[dict[Feature, FeatureEvaluation]] = None
        self._pipeline: Optional[PipelineResult] = None
        self._devices: Optional[list[TrackedDevice]] = None

    @classmethod
    def from_synthetic(
        cls, synthetic: SyntheticDataset, workers: int = 1,
        observe: bool = False, cache: Optional["ArtifactCache"] = None,
    ) -> "Study":
        """Wire a study over a generated dataset."""
        world = synthetic.world
        return cls(
            dataset=synthetic.scans,
            trust_store=world.trust_store,
            as_of=world.routing.origin_as,
            registry=world.registry,
            workers=workers,
            observe=observe,
            cache=cache,
        )

    @contextmanager
    def _stage(self, name: str) -> Iterator[None]:
        """One pipeline stage: a span on the study tracer, and — when
        observing — the tracer/registry installed process-wide so the
        stage's internals record into them too."""
        if self.observe:
            with obs_runtime.activated(self.trace, self.metrics):
                with self.trace.span(name):
                    yield
        else:
            with self.trace.span(name):
                yield

    @property
    def stage_timings(self) -> dict[str, float]:
        """Stage name → wall-clock seconds, derived from the span tree.

        The backward-compatible flat view: one entry per stage-level span
        (bare names — ``validation``, ``dedup``, …) plus the ``kernels``
        sub-steps flattened to their historical ``kernels_<substrate>``
        keys.  Detail spans (``link/feature=…``, ``scan/day=…``) stay in
        :attr:`trace` only.
        """
        by_id = {span.span_id: span for span in self.trace.spans}
        timings: dict[str, float] = {}
        for span in self.trace.spans:
            if "/" in span.name or "=" in span.name:
                parent = by_id.get(span.parent_id)
                if parent is not None and parent.name == "kernels" \
                        and span.name.startswith("kernels/"):
                    timings["kernels_" + span.name.split("/", 1)[1]] = span.wall
                continue
            timings[span.name] = span.wall
        return timings

    # --- artifact cache ---------------------------------------------------------

    def _load_artifacts(self) -> None:
        """Try the artifact cache once; install whatever it satisfies.

        On a hit the run reports an ``artifacts.load`` stage and the
        corresponding ``kernels`` / ``validation`` stages never exist —
        no phantom zero-duration spans in the profile.  A corpus that is
        a recorded delta-append of a cached base (``repro append
        --cache-dir``) still warm-starts its kernels: the cache
        delta-merges the base's artifacts over the appended rows instead
        of missing (see ``artifacts.extended`` in
        :mod:`repro.io.artifacts`).
        """
        if self.cache is None or self._artifacts_attempted:
            return
        self._artifacts_attempted = True
        with self._stage("artifacts.load"):
            loaded = self.cache.load(
                self.dataset, trust_store=self.trust_store,
                workers=self.workers,
            )
        if loaded.kernels:
            self._kernels_built = True
        if (
            loaded.validation is not None
            and self._validation is None
            and not self.extra_intermediates
        ):
            # Cached verdicts are keyed by corpus + trust-store digest
            # only; extra intermediates change chain building, so a
            # study carrying them must recompute (and never store).
            self._validation = loaded.validation

    def _store_artifacts(self) -> None:
        """Persist the currently built artifacts (no-op without a cache)."""
        if self.cache is None:
            return
        validation = (
            None if self.extra_intermediates else self._validation
        )
        with self._stage("artifacts.store"):
            self.cache.store(
                self.dataset, validation=validation,
                trust_store=self.trust_store, workers=self.workers,
            )

    # --- §4.2 ------------------------------------------------------------------

    def validation(self) -> ValidationReport:
        """Classify every certificate (cached)."""
        if self._validation is None:
            self._load_artifacts()
        if self._validation is None:
            with self._stage("validation"):
                self._validation = validate_dataset(
                    self.dataset, self.trust_store,
                    extra_intermediates=self.extra_intermediates,
                )
            self._store_artifacts()
        return self._validation

    @property
    def invalid(self) -> set[bytes]:
        """Fingerprints of the invalid certificates."""
        return self.validation().invalid

    @property
    def valid(self) -> set[bytes]:
        """Fingerprints of the valid certificates."""
        return self.validation().valid

    # --- §6 kernels -------------------------------------------------------------

    def kernels(self) -> None:
        """Build the columnar kernel layer once (cached on the dataset).

        The CSR observation index, the per-certificate interval arrays,
        and the feature matrix back every §6 stage; building them here
        keeps their one-time cost out of the per-stage timings.  Every
        entry point — an explicit call or the lazy pull from ``dedup`` /
        ``feature_evaluations`` — lands here, so the ``kernels`` span
        (and its ``kernels/index``, ``kernels/intervals``,
        ``kernels/matrix`` children, flattened into ``stage_timings`` as
        ``kernels_<substrate>``) is recorded exactly once regardless of
        which stage triggered the build.
        """
        if self._kernels_built:
            return
        self._load_artifacts()
        if self._kernels_built:
            return
        with self._stage("kernels"):
            with self.trace.span("kernels/index"):
                self.dataset.build_columns(workers=self.workers)
                self.dataset.index
            with self.trace.span("kernels/intervals"):
                self.dataset.intervals
            with self.trace.span("kernels/matrix"):
                self.dataset.build_feature_matrix(workers=self.workers)
        self._kernels_built = True
        self._store_artifacts()

    # --- §6.2 -------------------------------------------------------------------

    def dedup(self) -> DedupResult:
        """Apply the two-address uniqueness rule to the invalid population."""
        if self._dedup is None:
            invalid = self.invalid
            self.kernels()
            with self._stage("dedup"):
                self._dedup = classify_unique_certificates(
                    self.dataset, invalid
                )
        return self._dedup

    @property
    def unique_invalid(self) -> Iterable[bytes]:
        """Invalid certificates attributable to single devices."""
        return self.dedup().unique

    # --- §6.3–6.4 ------------------------------------------------------------------

    def feature_evaluations(self) -> dict[Feature, FeatureEvaluation]:
        """Table 6: per-field linking and consistency (cached)."""
        if self._evaluations is None:
            unique_invalid = list(self.unique_invalid)
            self.kernels()
            with self._stage("feature_evaluations"):
                self._evaluations = evaluate_all_features(
                    self.dataset, unique_invalid, self.as_of,
                    workers=self.workers,
                )
        return self._evaluations

    def pipeline(self) -> PipelineResult:
        """The iterative §6.4.3 linking (cached).

        With a pinned :attr:`link_plan` the per-feature evaluations are
        never consulted (or computed) — the pipeline links in the given
        order directly.
        """
        if self._pipeline is None:
            if self.link_plan is not None:
                self.kernels()
                with self._stage("pipeline"):
                    self._pipeline = iterative_link(
                        self.dataset,
                        self.unique_invalid,
                        self.as_of,
                        field_order=self.link_plan,
                    )
            else:
                evaluations = self.feature_evaluations()
                with self._stage("pipeline"):
                    self._pipeline = iterative_link(
                        self.dataset,
                        self.unique_invalid,
                        self.as_of,
                        evaluations=evaluations,
                    )
        return self._pipeline

    def lifetime_improvement(self) -> LifetimeImprovement:
        """§6.4.4: population statistics before vs after linking."""
        return lifetime_improvement(
            self.dataset, self.pipeline(), self.unique_invalid
        )

    # --- §7 -----------------------------------------------------------------------

    def tracked_devices(self) -> list[TrackedDevice]:
        """The inferred device population (cached)."""
        if self._devices is None:
            pipeline = self.pipeline()
            with self._stage("tracking"):
                self._devices = build_tracked_devices(
                    self.dataset, pipeline, self.unique_invalid
                )
        return self._devices

    def trackable(self, min_days: int = 365) -> TrackableReport:
        """§7.2: trackable-device counts with/without linking."""
        return trackable_devices(
            self.dataset, self.tracked_devices(), self.unique_invalid, min_days
        )

    def movement(self, bulk_threshold: int = 10, min_days: int = 365) -> MovementReport:
        """§7.3: AS transitions, bulk transfers, country moves."""
        return analyze_movement(
            self.tracked_devices(),
            self.as_of,
            registry=self.registry,
            bulk_threshold=bulk_threshold,
            min_days=min_days,
        )

    def reassignment(
        self, min_devices_per_as: int = 10, min_days: int = 365
    ) -> ReassignmentReport:
        """§7.4: per-AS static-assignment inference (Figure 11)."""
        return infer_reassignment_policies(
            self.tracked_devices(),
            self.as_of,
            min_devices_per_as=min_devices_per_as,
            min_days=min_days,
        )
