"""End-to-end study facade.

:class:`Study` wires the full paper pipeline over one scan corpus:

    scans → validation (§4.2) → comparison analyses (§5)
          → dedup (§6.2) → per-field linking + consistency (§6.3–6.4)
          → iterative pipeline (§6.4.3) → device tracking (§7)

Each stage is computed once and cached; downstream stages pull upstream
ones automatically, so ``study.movement()`` alone runs everything it
needs.  Construct from a synthetic dataset with :meth:`from_synthetic`,
or from any :class:`~repro.scanner.dataset.ScanDataset` plus a trust
store, AS lookup, and registry for real scan corpora.

Every cached stage records its wall-clock cost in :attr:`Study.stage_timings`
(stage name → seconds), so benchmark harnesses can report per-stage
numbers without re-instrumenting the pipeline.  ``workers > 1`` fans the
independent per-feature Table 6 passes out over a process pool; results
are identical to the serial path.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, TypeVar

from .core.consistency import ASLookup
from .core.dedup import DedupResult, classify_unique_certificates
from .core.features import Feature
from .core.pipeline import (
    FeatureEvaluation,
    LifetimeImprovement,
    PipelineResult,
    evaluate_all_features,
    iterative_link,
    lifetime_improvement,
)
from .core.tracking import (
    MovementReport,
    ReassignmentReport,
    TrackableReport,
    TrackedDevice,
    analyze_movement,
    build_tracked_devices,
    infer_reassignment_policies,
    trackable_devices,
)
from .core.validation import ValidationReport, validate_dataset
from .datasets.synthetic import SyntheticDataset
from .net.asn import ASRegistry
from .scanner.dataset import ScanDataset
from .x509.truststore import TrustStore

__all__ = ["Study"]

T = TypeVar("T")


class Study:
    """One full reproduction run over a scan corpus."""

    def __init__(
        self,
        dataset: ScanDataset,
        trust_store: TrustStore,
        as_of: ASLookup,
        registry: Optional[ASRegistry] = None,
        workers: int = 1,
    ) -> None:
        self.dataset = dataset
        self.trust_store = trust_store
        self.as_of = as_of
        self.registry = registry
        #: Process fan-out for the independent per-feature passes.
        self.workers = workers
        #: stage name → wall-clock seconds, recorded when each cached
        #: stage is first computed.
        self.stage_timings: dict[str, float] = {}
        self._validation: Optional[ValidationReport] = None
        self._dedup: Optional[DedupResult] = None
        self._evaluations: Optional[dict[Feature, FeatureEvaluation]] = None
        self._pipeline: Optional[PipelineResult] = None
        self._devices: Optional[list[TrackedDevice]] = None

    @classmethod
    def from_synthetic(
        cls, synthetic: SyntheticDataset, workers: int = 1
    ) -> "Study":
        """Wire a study over a generated dataset."""
        world = synthetic.world
        return cls(
            dataset=synthetic.scans,
            trust_store=world.trust_store,
            as_of=world.routing.origin_as,
            registry=world.registry,
            workers=workers,
        )

    def _timed(self, stage: str, compute: Callable[[], T]) -> T:
        """Run one stage's computation, recording its wall-clock cost."""
        started = time.perf_counter()
        value = compute()
        self.stage_timings[stage] = time.perf_counter() - started
        return value

    # --- §4.2 ------------------------------------------------------------------

    def validation(self) -> ValidationReport:
        """Classify every certificate (cached)."""
        if self._validation is None:
            self._validation = self._timed(
                "validation",
                lambda: validate_dataset(self.dataset, self.trust_store),
            )
        return self._validation

    @property
    def invalid(self) -> set[bytes]:
        """Fingerprints of the invalid certificates."""
        return self.validation().invalid

    @property
    def valid(self) -> set[bytes]:
        """Fingerprints of the valid certificates."""
        return self.validation().valid

    # --- §6 kernels -------------------------------------------------------------

    def kernels(self) -> None:
        """Build the columnar kernel layer once (cached on the dataset).

        The CSR observation index, the per-certificate interval arrays,
        and the feature matrix back every §6 stage; building them here
        keeps their one-time cost out of the per-stage timings.  Each
        substrate gets its own sub-timing (``kernels_index``,
        ``kernels_intervals``, ``kernels_matrix``) so benchmarks can
        charge the index — which row-path replays also answer from —
        separately from the kernel-only arrays.
        """
        if "kernels" not in self.stage_timings:
            started = time.perf_counter()
            self._timed("kernels_index", lambda: self.dataset.index)
            self._timed("kernels_intervals", lambda: self.dataset.intervals)
            self._timed("kernels_matrix", lambda: self.dataset.feature_matrix)
            self.stage_timings["kernels"] = time.perf_counter() - started

    # --- §6.2 -------------------------------------------------------------------

    def dedup(self) -> DedupResult:
        """Apply the two-address uniqueness rule to the invalid population."""
        if self._dedup is None:
            invalid = self.invalid
            self.kernels()
            self._dedup = self._timed(
                "dedup",
                lambda: classify_unique_certificates(self.dataset, invalid),
            )
        return self._dedup

    @property
    def unique_invalid(self) -> Iterable[bytes]:
        """Invalid certificates attributable to single devices."""
        return self.dedup().unique

    # --- §6.3–6.4 ------------------------------------------------------------------

    def feature_evaluations(self) -> dict[Feature, FeatureEvaluation]:
        """Table 6: per-field linking and consistency (cached)."""
        if self._evaluations is None:
            unique_invalid = list(self.unique_invalid)
            self.kernels()
            self._evaluations = self._timed(
                "feature_evaluations",
                lambda: evaluate_all_features(
                    self.dataset, unique_invalid, self.as_of,
                    workers=self.workers,
                ),
            )
        return self._evaluations

    def pipeline(self) -> PipelineResult:
        """The iterative §6.4.3 linking (cached)."""
        if self._pipeline is None:
            evaluations = self.feature_evaluations()
            self._pipeline = self._timed(
                "pipeline",
                lambda: iterative_link(
                    self.dataset,
                    self.unique_invalid,
                    self.as_of,
                    evaluations=evaluations,
                ),
            )
        return self._pipeline

    def lifetime_improvement(self) -> LifetimeImprovement:
        """§6.4.4: population statistics before vs after linking."""
        return lifetime_improvement(
            self.dataset, self.pipeline(), self.unique_invalid
        )

    # --- §7 -----------------------------------------------------------------------

    def tracked_devices(self) -> list[TrackedDevice]:
        """The inferred device population (cached)."""
        if self._devices is None:
            pipeline = self.pipeline()
            self._devices = self._timed(
                "tracking",
                lambda: build_tracked_devices(
                    self.dataset, pipeline, self.unique_invalid
                ),
            )
        return self._devices

    def trackable(self, min_days: int = 365) -> TrackableReport:
        """§7.2: trackable-device counts with/without linking."""
        return trackable_devices(
            self.dataset, self.tracked_devices(), self.unique_invalid, min_days
        )

    def movement(self, bulk_threshold: int = 10, min_days: int = 365) -> MovementReport:
        """§7.3: AS transitions, bulk transfers, country moves."""
        return analyze_movement(
            self.tracked_devices(),
            self.as_of,
            registry=self.registry,
            bulk_threshold=bulk_threshold,
            min_days=min_days,
        )

    def reassignment(
        self, min_devices_per_as: int = 10, min_days: int = 365
    ) -> ReassignmentReport:
        """§7.4: per-AS static-assignment inference (Figure 11)."""
        return infer_reassignment_policies(
            self.tracked_devices(),
            self.as_of,
            min_devices_per_as=min_devices_per_as,
            min_days=min_days,
        )
