"""One-shot markdown study report.

:func:`write_report` runs the full pipeline over a corpus and renders a
self-contained markdown document — every §4–§7 headline in one place, the
shape a measurement-group tech report would take.  Exposed as
``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from typing import Union

from .core.analysis.fleet import turnover
from .core.analysis.issuers import self_signed_fraction, top_issuers
from .core.analysis.keys import key_sharing
from .core.analysis.longevity import (
    ephemeral_fingerprints,
    lifetimes,
    reissue_gap,
    validity_periods,
)
from .core.analysis.scans import invalid_fraction_summary, per_scan_counts
from .core.analysis.trends import growth_comparison
from .simtime import format_day
from .stats.tables import format_count, format_pct
from .study import Study

__all__ = ["render_report", "write_report"]


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_report(study: Study, title: str = "Invalid-certificate study") -> str:
    """Run every stage and render the markdown report."""
    dataset = study.dataset
    validation = study.validation()
    sections: list[str] = [f"# {title}", ""]

    # --- corpus -----------------------------------------------------------
    first, last = dataset.scans[0].day, dataset.scans[-1].day
    sections += [
        "## Corpus",
        "",
        _md_table(
            ["scans", "window", "observations", "certificates"],
            [[
                len(dataset.scans),
                f"{format_day(first)} .. {format_day(last)}",
                format_count(dataset.n_observations),
                format_count(len(dataset.certificates)),
            ]],
        ),
        "",
    ]

    # --- validation ---------------------------------------------------------
    counts = per_scan_counts(dataset, validation)
    low, mean, high = invalid_fraction_summary(counts)
    growth = growth_comparison(counts)
    sections += [
        "## Validation (§4.2)",
        "",
        f"* invalid: **{format_pct(validation.invalid_fraction)}** of the corpus"
        f" ({format_pct(mean)} per scan, range {format_pct(low)}–{format_pct(high)})",
        f"* self-signed share of invalid: "
        f"{format_pct(self_signed_fraction(dataset, study.invalid))}",
        f"* invalid growth: {growth.invalid.slope_per_year:+.0f}/year vs "
        f"{growth.valid.slope_per_year:+.0f}/year valid",
        "",
    ]

    # --- comparison -----------------------------------------------------------
    invalid_validity = validity_periods(dataset, study.invalid)
    valid_validity = validity_periods(dataset, study.valid)
    invalid_life = lifetimes(dataset, study.invalid)
    valid_life = lifetimes(dataset, study.valid)
    invalid_keys = key_sharing(dataset, study.invalid)
    valid_keys = key_sharing(dataset, study.valid)
    sections += [
        "## Invalid vs valid (§5)",
        "",
        _md_table(
            ["statistic", "valid", "invalid"],
            [
                ["validity period (median)",
                 f"{valid_validity.median / 365:.1f}y",
                 f"{invalid_validity.median / 365:.1f}y"],
                ["observed lifetime (median)",
                 f"{valid_life.median_days:.0f}d",
                 f"{invalid_life.median_days:.0f}d"],
                ["single-scan share",
                 format_pct(valid_life.single_scan_fraction),
                 format_pct(invalid_life.single_scan_fraction)],
                ["certificates sharing keys",
                 format_pct(valid_keys.shared_fraction),
                 format_pct(invalid_keys.shared_fraction)],
            ],
        ),
        "",
        "Top invalid issuers:",
        "",
        _md_table(
            ["issuer", "certificates"],
            [[cn, format_count(count)]
             for cn, count in top_issuers(dataset, study.invalid)],
        ),
        "",
    ]
    ephemerals = ephemeral_fingerprints(dataset, study.invalid)
    if ephemerals:
        gap = reissue_gap(dataset, ephemerals)
        sections += [
            f"Reissue gap over {format_count(len(ephemerals))} ephemeral "
            f"certificates: {format_pct(gap.within_four_days_fraction)} within"
            f" 4 days, {format_pct(gap.over_1000_days_fraction)} beyond 1,000"
            f" days (firmware clocks).",
            "",
        ]

    # --- linking -----------------------------------------------------------------
    pipeline = study.pipeline()
    improvement = study.lifetime_improvement()
    sections += [
        "## Linking (§6)",
        "",
        f"* deduplication excluded "
        f"{format_pct(study.dedup().excluded_fraction)} of invalid certificates",
        f"* linked **{format_count(pipeline.linked_certificates)}** certificates "
        f"({format_pct(pipeline.linked_fraction)}) into "
        f"{format_count(len(pipeline.groups))} device chains",
        f"* field order: {', '.join(f.value for f in pipeline.field_order)}",
        f"* excluded fields: "
        f"{', '.join(f.value for f in pipeline.excluded) or '(none)'}",
        f"* single-scan unit share: "
        f"{format_pct(improvement.single_scan_fraction_before)} → "
        f"{format_pct(improvement.single_scan_fraction_after)}",
        f"* mean unit lifetime: {improvement.mean_lifetime_before:.1f}d → "
        f"{improvement.mean_lifetime_after:.1f}d",
        "",
    ]

    # --- tracking --------------------------------------------------------------------
    trackable = study.trackable()
    movement = study.movement()
    sections += [
        "## Tracking (§7)",
        "",
        f"* trackable devices: {format_count(trackable.trackable_without_linking)}"
        f" without linking → {format_count(trackable.trackable_with_linking)}"
        f" with (+{format_pct(trackable.improvement_fraction)})",
        f"* {format_count(movement.devices_changing_as)} devices changed AS"
        f" ({format_pct(movement.single_change_fraction)} exactly once);"
        f" {format_count(movement.country_moves)} cross-country moves",
    ]
    for transfer in movement.bulk_transfers[:3]:
        sections.append(
            f"* bulk transfer: AS{transfer.from_asn} → AS{transfer.to_asn}, "
            f"{transfer.device_count} devices around {format_day(transfer.day)}"
        )
    try:
        reassignment = study.reassignment()
        sections.append(
            f"* {format_pct(reassignment.fraction_of_ases_mostly_static())} of"
            f" measurable ASes assign ≥90% static addresses;"
            f" {len(reassignment.highly_dynamic_ases)} ASes are near-fully dynamic"
        )
    except ValueError:
        sections.append("* reassignment inference: too few tracked devices per AS")
    devices = study.tracked_devices()
    if devices:
        churn = turnover(devices, first, last)
        sections.append(
            f"* fleet churn: {churn.arrivals_per_month:.1f} arrivals vs "
            f"{churn.departures_per_month:.1f} departures per month"
        )
    sections.append("")
    return "\n".join(sections)


def write_report(
    study: Study,
    path: Union[str, pathlib.Path],
    title: str = "Invalid-certificate study",
) -> None:
    """Render and write the report to ``path``."""
    pathlib.Path(path).write_text(render_report(study, title))
