"""Ready-made synthetic datasets at several scales.

* :func:`tiny` — seconds to build; unit/integration tests.
* :func:`small` — tens of seconds; examples and quick experiments.
* :func:`paper` — the full 222-scan replica schedule; benchmark harness.
* :func:`xlarge_config` — a ~10× ``paper`` world for
  :func:`generate_streamed`, which writes the corpus shard-by-shard into
  an ``.rpz`` archive in O(largest shard) memory instead of holding the
  whole corpus in RAM.

Each in-memory builder returns a :class:`SyntheticDataset` bundling the
world, the campaigns, and the collected
:class:`~repro.scanner.dataset.ScanDataset`, so callers can reach both
the observations (what the paper had) and the ground truth (what the
paper wished it had).
"""

from __future__ import annotations

import pathlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Union

from ..internet.population import World, WorldConfig, build_world
from ..obs import runtime as obs
from ..scanner.campaign import ScanCampaign, make_campaigns
from ..scanner.dataset import ScanDataset
from ..scanner.engine import ScanEngine, _init_scan_worker, _scan_one_day

__all__ = [
    "SyntheticDataset",
    "StreamedGeneration",
    "generate",
    "generate_streamed",
    "tiny",
    "small",
    "paper",
    "xlarge_config",
]


@dataclass
class SyntheticDataset:
    """A built world plus everything scanned out of it."""

    world: World
    campaigns: tuple[ScanCampaign, ScanCampaign]
    scans: ScanDataset


@dataclass
class StreamedGeneration:
    """Receipt of a shard-streamed corpus write (no corpus in RAM)."""

    world: World
    campaigns: tuple[ScanCampaign, ScanCampaign]
    path: pathlib.Path
    #: Corpus digest, computed incrementally while writing; equals
    #: ``ArchiveBackend(path).corpus_digest()``.
    digest: str
    n_scans: int
    n_observations: int
    n_certificates: int


def _world_campaigns(
    config: WorldConfig, scan_stride: int
) -> "tuple[World, tuple[ScanCampaign, ScanCampaign]]":
    world = build_world(config)
    announced = world.routing.table_at(0).routes()
    # Only the generic tails may be blacklisted; the paper's named ISPs
    # (Deutsche Telekom, Comcast, GoDaddy, ...) stay visible to both
    # operators so the Table 3 populations survive.
    generic_asns = {bp.asn for bp in world.blueprints if bp.asn >= 39000}
    campaigns = make_campaigns(
        [route.prefix for route in announced],
        stride=scan_stride,
        blacklistable=[r.prefix for r in announced if r.asn in generic_asns],
    )
    return world, campaigns


def generate(
    config: WorldConfig,
    scan_stride: int = 1,
    collect_handshakes: bool = False,
    workers: int = 1,
) -> SyntheticDataset:
    """Build a world and scan it with both campaigns.

    ``workers > 1`` fans scan days out over a process pool; the corpus is
    identical to a serial run (per-day RNG is keyed by seed/campaign/day).
    """
    world, campaigns = _world_campaigns(config, scan_stride)
    scans = ScanDataset.collect(
        world, campaigns, collect_handshakes=collect_handshakes, workers=workers
    )
    return SyntheticDataset(world=world, campaigns=campaigns, scans=scans)


def generate_streamed(
    config: WorldConfig,
    path: Union[str, pathlib.Path],
    scan_stride: int = 1,
    collect_handshakes: bool = False,
    workers: int = 1,
) -> StreamedGeneration:
    """Build a world and stream its corpus straight into an ``.rpz``.

    Day shards flush into the archive writer as they are produced — in
    (day, source) order across both campaigns — so nothing ever holds
    more than one shard of observations: corpora 10–100× the ``paper``
    preset fit in the same RAM.  Because per-day RNG streams are
    independent and the archive's certificate order is canonical
    (observed-first-appearance, then sorted extras), the written bytes —
    and the incrementally computed digest — are identical to
    ``save_dataset`` over an in-memory build of the same config, and
    identical across ``workers`` settings.
    """
    from ..io.store import StreamingDatasetWriter

    world, campaigns = _world_campaigns(config, scan_stride)
    engine = ScanEngine(world, collect_handshakes=collect_handshakes)
    schedule = sorted(
        ((day, campaign) for campaign in campaigns for day in campaign.scan_days),
        key=lambda task: (task[0], task[1].name),
    )
    writer = StreamingDatasetWriter(path)
    try:
        with obs.span("generate/streamed", scans=len(schedule)):
            if workers <= 1 or len(schedule) <= 1:
                for day, campaign in schedule:
                    writer.add_shard(engine.run_shard(campaign, day))
            else:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(schedule)),
                    initializer=_init_scan_worker,
                    initargs=(world, engine._duration, collect_handshakes,
                              obs.enabled()),
                ) as pool:
                    for shard, day_certs, delta in pool.map(
                        _scan_one_day,
                        ((campaign, day) for day, campaign in schedule),
                    ):
                        obs.absorb(delta)
                        for fingerprint, cert in day_certs.items():
                            engine.certificate_store.setdefault(fingerprint, cert)
                        writer.add_shard(shard)
    except BaseException:
        writer.abort()
        raise
    digest = writer.close(engine.certificate_store)
    return StreamedGeneration(
        world=world,
        campaigns=campaigns,
        path=pathlib.Path(path),
        digest=digest,
        n_scans=writer.n_scans,
        n_observations=writer.n_observations,
        n_certificates=len(engine.certificate_store),
    )


def tiny(seed: int = 2016) -> SyntheticDataset:
    """Small world, sparse schedule — for tests."""
    config = WorldConfig(
        seed=seed,
        n_devices=220,
        n_websites=75,
        n_generic_access=30,
        n_enterprise=8,
        n_hosting=6,
        unused_roots=5,
    )
    return generate(config, scan_stride=8)


def small(seed: int = 2016) -> SyntheticDataset:
    """Medium world, half-density schedule — for examples."""
    config = WorldConfig(
        seed=seed,
        n_devices=900,
        n_websites=310,
        n_generic_access=60,
        n_enterprise=15,
        n_hosting=10,
    )
    return generate(config, scan_stride=3)


def paper(seed: int = 2016) -> SyntheticDataset:
    """Full-fidelity replica schedule — for the benchmark harness."""
    config = WorldConfig(seed=seed, n_devices=2500, n_websites=850)
    return generate(config, scan_stride=1)


def xlarge_config(seed: int = 2016) -> WorldConfig:
    """A ~10× ``paper`` world, meant for :func:`generate_streamed`.

    At this scale the corpus (~11M observations) should never be held as
    rows in RAM; stream it into an archive and analyze it from there.
    """
    return WorldConfig(
        seed=seed,
        n_devices=25_000,
        n_websites=8_500,
        n_generic_access=120,
        n_enterprise=40,
        n_hosting=25,
    )
