"""Ready-made synthetic datasets at three scales.

* :func:`tiny` — seconds to build; unit/integration tests.
* :func:`small` — tens of seconds; examples and quick experiments.
* :func:`paper` — the full 222-scan replica schedule; benchmark harness.

Each returns a :class:`SyntheticDataset` bundling the world, the campaigns,
and the collected :class:`~repro.scanner.dataset.ScanDataset`, so callers
can reach both the observations (what the paper had) and the ground truth
(what the paper wished it had).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..internet.population import World, WorldConfig, build_world
from ..scanner.campaign import ScanCampaign, make_campaigns
from ..scanner.dataset import ScanDataset

__all__ = ["SyntheticDataset", "generate", "tiny", "small", "paper"]


@dataclass
class SyntheticDataset:
    """A built world plus everything scanned out of it."""

    world: World
    campaigns: tuple[ScanCampaign, ScanCampaign]
    scans: ScanDataset


def generate(
    config: WorldConfig,
    scan_stride: int = 1,
    collect_handshakes: bool = False,
    workers: int = 1,
) -> SyntheticDataset:
    """Build a world and scan it with both campaigns.

    ``workers > 1`` fans scan days out over a process pool; the corpus is
    identical to a serial run (per-day RNG is keyed by seed/campaign/day).
    """
    world = build_world(config)
    announced = world.routing.table_at(0).routes()
    # Only the generic tails may be blacklisted; the paper's named ISPs
    # (Deutsche Telekom, Comcast, GoDaddy, ...) stay visible to both
    # operators so the Table 3 populations survive.
    generic_asns = {bp.asn for bp in world.blueprints if bp.asn >= 39000}
    campaigns = make_campaigns(
        [route.prefix for route in announced],
        stride=scan_stride,
        blacklistable=[r.prefix for r in announced if r.asn in generic_asns],
    )
    scans = ScanDataset.collect(
        world, campaigns, collect_handshakes=collect_handshakes, workers=workers
    )
    return SyntheticDataset(world=world, campaigns=campaigns, scans=scans)


def tiny(seed: int = 2016) -> SyntheticDataset:
    """Small world, sparse schedule — for tests."""
    config = WorldConfig(
        seed=seed,
        n_devices=220,
        n_websites=75,
        n_generic_access=30,
        n_enterprise=8,
        n_hosting=6,
        unused_roots=5,
    )
    return generate(config, scan_stride=8)


def small(seed: int = 2016) -> SyntheticDataset:
    """Medium world, half-density schedule — for examples."""
    config = WorldConfig(
        seed=seed,
        n_devices=900,
        n_websites=310,
        n_generic_access=60,
        n_enterprise=15,
        n_hosting=10,
    )
    return generate(config, scan_stride=3)


def paper(seed: int = 2016) -> SyntheticDataset:
    """Full-fidelity replica schedule — for the benchmark harness."""
    config = WorldConfig(seed=seed, n_devices=2500, n_websites=850)
    return generate(config, scan_stride=1)
