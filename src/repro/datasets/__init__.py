"""Synthetic dataset presets."""

from .synthetic import SyntheticDataset, generate, paper, small, tiny

__all__ = ["SyntheticDataset", "generate", "paper", "small", "tiny"]
