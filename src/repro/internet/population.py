"""World assembly: ASes, prefixes, policies, devices, and websites.

:func:`build_world` turns a :class:`WorldConfig` into a fully wired
:class:`World`:

* an AS topology with the named ISPs of Table 3 (Deutsche Telekom, Comcast,
  Vodafone, Telefonica Germany, Korea Telecom on the invalid side; GoDaddy,
  Unified Layer, Amazon, SoftLayer on the valid side) plus configurable
  long tails of generic access, enterprise, and hosting ASes;
* a BGP routing history, including the §7.3-style bulk prefix transfer
  (Verizon hands a prefix to MCI mid-dataset);
* per-AS address-assignment policies — the German consumer ISPs force
  daily reassignment, most others are static (Figure 11's bimodality);
* a device fleet drawn from the vendor catalog with per-profile AS
  affinities (FRITZ!Boxes overwhelmingly in German churn ISPs, PlayBooks
  behind mobile carriers, CRL-bearing gateways in static ASes);
* a website fleet in hosting/content ASes with static addresses.

Everything is deterministic from ``config.seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..net.asn import ASInfo, ASRegistry, ASType, OrgRecord
from ..net.bgp import PrefixTable, Route, RoutingHistory
from ..net.ip import Prefix
from ..seeding import stable_rng
from ..x509.keys import generate_keypair
from ..x509.name import Name
from ..x509.truststore import TrustStore
from .devices import DEFAULT_KEY_BITS, Device, Location, PrivateCA
from .dhcp import AddressPool, AssignmentPolicy, PeriodicReassignment, StaticAssignment
from .vendors import IssuerScheme, VendorProfile, standard_catalog
from .websites import CAHierarchy, Website

__all__ = ["ASBlueprint", "WorldConfig", "World", "build_world", "standard_topology"]


@dataclass(frozen=True)
class ASBlueprint:
    """Specification for one AS before it is wired into the world."""

    asn: int
    name: str
    org: str
    country: str
    as_type: ASType
    group: str                 # placement tag, e.g. 'german-churn'
    policy: str                # 'static' or 'periodic'
    period_days: int = 1
    prefix_length: int = 18    # one pool prefix of this length
    weight: float = 1.0        # share of group placement


def standard_topology(
    n_generic_access: int = 120,
    n_enterprise: int = 25,
    n_hosting: int = 16,
) -> list[ASBlueprint]:
    """The default AS topology, headlined by the paper's named networks."""
    t = ASType.TRANSIT_ACCESS
    blueprints = [
        # German consumer ISPs: huge FRITZ!Box fleets, daily reassignment.
        ASBlueprint(3320, "Deutsche Telekom AG", "Deutsche Telekom AG", "DEU", t,
                    "german-churn", "periodic", 1, 16, weight=4.0),
        ASBlueprint(3209, "Vodafone GmbH", "Vodafone GmbH", "DEU", t,
                    "german-churn", "periodic", 1, 17, weight=1.5),
        ASBlueprint(6805, "Telefonica Germany GmbH", "Telefonica Germany", "DEU", t,
                    "german-churn", "periodic", 1, 17, weight=1.2),
        # Large mostly-static consumer ISPs.
        ASBlueprint(7922, "Comcast Cable Communications, Inc.", "Comcast", "USA", t,
                    "us-static", "static", 1, 16, weight=3.0),
        ASBlueprint(7018, "AT&T Internet Services", "AT&T", "USA", t,
                    "us-static", "static", 1, 17, weight=1.5),
        ASBlueprint(4766, "Korea Telecom", "Korea Telecom", "KOR", t,
                    "asia-static", "static", 1, 16, weight=2.0),
        # The prefix-transfer pair of §7.3.
        ASBlueprint(19262, "Verizon Online LLC", "Verizon", "USA", t,
                    "us-static", "static", 1, 17, weight=1.0),
        ASBlueprint(701, "MCI Communications Services", "Verizon", "USA", t,
                    "us-static", "static", 1, 18, weight=0.3),
        # Mobile carriers (PlayBook homes), heavily dynamic.
        ASBlueprint(23300, "BlackBerry Carrier Net", "BlackBerry", "CAN", t,
                    "mobile", "periodic", 1, 18, weight=1.0),
        ASBlueprint(22394, "Cellco Partnership", "Verizon Wireless", "USA", t,
                    "mobile", "periodic", 1, 18, weight=1.0),
        # Highly dynamic international access ISPs (§7.4's examples).
        ASBlueprint(8048, "CANTV Servicios Venezuela", "Telefonica Venezolana", "VEN", t,
                    "latam-churn", "periodic", 1, 18, weight=1.0),
        ASBlueprint(26599, "TIM Celular S.A.", "Tim Celular", "BRA", t,
                    "latam-churn", "periodic", 1, 18, weight=0.7),
        ASBlueprint(45477, "BSES TeleCom Limited", "BSES TeleCom", "IND", t,
                    "asia-churn", "periodic", 1, 19, weight=0.5),
        # Hosting / content networks of Table 3's valid side.
        ASBlueprint(26496, "GoDaddy.com, LLC", "GoDaddy", "USA", ASType.CONTENT,
                    "hosting", "static", 1, 17, weight=3.0),
        ASBlueprint(46606, "Unified Layer", "Unified Layer", "USA", ASType.CONTENT,
                    "hosting", "static", 1, 18, weight=1.5),
        ASBlueprint(14618, "Amazon, Inc.", "Amazon", "USA", ASType.CONTENT,
                    "hosting", "static", 1, 17, weight=1.3),
        ASBlueprint(36351, "SoftLayer Technologies", "SoftLayer", "USA", ASType.CONTENT,
                    "hosting", "static", 1, 18, weight=1.2),
        ASBlueprint(16509, "Amazon, Inc.", "Amazon", "USA", ASType.CONTENT,
                    "hosting", "static", 1, 18, weight=1.1),
    ]

    countries = ("USA", "DEU", "GBR", "FRA", "JPN", "KOR", "BRA", "RUS",
                 "ITA", "ESP", "NLD", "POL", "CAN", "AUS", "TUR", "MEX")
    for index in range(n_generic_access):
        rng = stable_rng("topology-access", index)
        country = countries[index % len(countries)]
        # Most access ASes are static; a minority churn (Figure 11).
        if index % 7 == 0:
            policy, period = "periodic", rng.choice((1, 7, 30))
        else:
            policy, period = "static", 1
        blueprints.append(
            ASBlueprint(
                60000 + index, f"Access ISP {index}", f"Access Org {index}",
                country, t, "generic-access", policy, period, 20,
                weight=0.2 + rng.random(),
            )
        )
    for index in range(n_enterprise):
        blueprints.append(
            ASBlueprint(
                64600 + index, f"Enterprise Net {index}", f"Enterprise {index}",
                countries[index % len(countries)], ASType.ENTERPRISE,
                "enterprise", "static", 1, 22, weight=1.0,
            )
        )
    for index in range(n_hosting):
        blueprints.append(
            ASBlueprint(
                39000 + index, f"Hosting Provider {index}", f"Hosting {index}",
                "USA" if index % 3 else "NLD", ASType.CONTENT,
                "hosting", "static", 1, 20, weight=0.4,
            )
        )
    return blueprints


#: Per-profile placement affinity: vendor name → {AS group: weight}.
_PROFILE_AFFINITY: dict[str, dict[str, float]] = {
    "fritzbox": {"german-churn": 0.85, "generic-access": 0.15},
    "budget-router": {"generic-access": 0.50, "asia-churn": 0.20,
                      "latam-churn": 0.20, "asia-static": 0.10},
    "dvr": {"asia-static": 0.40, "generic-access": 0.35, "asia-churn": 0.25},
    "lancom": {"german-churn": 0.45, "generic-access": 0.45, "enterprise": 0.10},
    "generic-router": {"us-static": 0.40, "generic-access": 0.40,
                       "asia-static": 0.12, "latam-churn": 0.05, "asia-churn": 0.03},
    "wd-mycloud": {"us-static": 0.55, "generic-access": 0.45},
    "vmware": {"enterprise": 0.55, "us-static": 0.25, "generic-access": 0.20},
    "playbook": {"mobile": 0.95, "generic-access": 0.05},
    "empty-issuer": {"generic-access": 0.60, "us-static": 0.25, "asia-static": 0.15},
    "enterprise-gateway": {"enterprise": 0.60, "us-static": 0.20, "generic-access": 0.20},
    "vpn-concentrator": {"enterprise": 0.70, "us-static": 0.30},
    "enterprise-firewall": {"enterprise": 0.70, "generic-access": 0.30},
    "ip-camera": {"generic-access": 0.50, "asia-static": 0.30, "us-static": 0.20},
    "legacy-v1": {"generic-access": 0.50, "us-static": 0.30, "asia-static": 0.20},
    "misc-appliance": {"generic-access": 0.60, "enterprise": 0.40},
    "firmware-baked": {"generic-access": 0.55, "asia-static": 0.25, "us-static": 0.20},
    "broken-version": {"generic-access": 0.60, "asia-static": 0.40},
    "cpe-fleet": {"us-static": 0.50, "generic-access": 0.30, "asia-static": 0.20},
    "managed-gateway": {"us-static": 0.60, "enterprise": 0.40},
}


@dataclass
class WorldConfig:
    """Tunable knobs of the synthetic world."""

    seed: int = 2016
    n_devices: int = 1200
    n_websites: int = 410
    #: Day range the simulation must cover (scan campaigns live inside it).
    start_day: int = 4500
    end_day: int = 5600
    #: Fraction of devices already online at ``start_day``; the rest arrive
    #: uniformly over the window (invalid certificates grow over time).
    initially_active: float = 0.45
    #: Fraction of devices that switch access ISP once (§7.3 movement).
    mover_fraction: float = 0.10
    #: Fraction of movers whose new ISP is in a different country.
    cross_country_fraction: float = 0.08
    #: Day the Verizon→MCI prefix transfer happens (None disables it).
    prefix_transfer_day: Optional[int] = 5000
    #: Day of a Heartbleed-style disclosure (None disables the event).
    #: Vulnerable websites reissue out of schedule within weeks; 4.1 % of
    #: those emergency reissues keep the exposed key (Zhang et al., §5.2).
    heartbleed_day: Optional[int] = None
    #: Fraction of websites running a vulnerable stack when it is enabled.
    heartbleed_vulnerable_fraction: float = 0.30
    n_generic_access: int = 120
    n_enterprise: int = 25
    n_hosting: int = 16
    #: Pad the trust store with roots that sign nothing.
    unused_roots: int = 40
    key_bits: int = DEFAULT_KEY_BITS
    catalog: tuple[VendorProfile, ...] = field(default_factory=standard_catalog)


class World:
    """The assembled simulated Internet."""

    def __init__(
        self,
        config: WorldConfig,
        registry: ASRegistry,
        routing: RoutingHistory,
        policies: dict[int, AssignmentPolicy],
        devices: list[Device],
        websites: list[Website],
        hierarchy: CAHierarchy,
        trust_store: TrustStore,
        blueprints: list[ASBlueprint],
    ) -> None:
        self.config = config
        self.registry = registry
        self.routing = routing
        self.policies = policies
        self.devices = devices
        self.websites = websites
        self.hierarchy = hierarchy
        self.trust_store = trust_store
        self.blueprints = blueprints

    # --- ground-truth address resolution -----------------------------------

    def device_ip(self, device: Device, day: int, hour: float = 0.0) -> int:
        """The address a device holds at a given instant."""
        location = device.location_at(day)
        policy = self.policies[location.asn]
        return policy.address(location.subscriber, day, hour)

    def device_reassignment_hour(self, device: Device, day: int) -> float:
        """Hour the device's address flips on ``day`` (-1 if it does not)."""
        location = device.location_at(day)
        policy = self.policies[location.asn]
        return policy.reassignment_hour(location.subscriber, day)

    def origin_as(self, ip: int, day: int) -> Optional[int]:
        """Routing-table AS lookup, as the analysis layer performs it."""
        return self.routing.origin_as(ip, day)


def build_world(config: WorldConfig) -> World:
    """Assemble a deterministic world from the configuration."""
    blueprints = standard_topology(
        config.n_generic_access, config.n_enterprise, config.n_hosting
    )
    registry, routing, policies, pools, server_pools = _wire_networks(
        config, blueprints
    )
    hierarchy = CAHierarchy(config.seed, epoch_day=config.start_day)
    trust_store = hierarchy.trust_store(extra_unused_roots=config.unused_roots)
    devices = _build_devices(config, blueprints)
    websites = _build_websites(config, blueprints, hierarchy, server_pools)
    return World(
        config, registry, routing, policies, devices, websites,
        hierarchy, trust_store, blueprints,
    )


# ---------------------------------------------------------------------------
# Network wiring
# ---------------------------------------------------------------------------

_USABLE_SLASH8 = [
    top for top in range(1, 224)
    if top not in (10, 100, 127, 169, 172, 192)
]


def _wire_networks(config, blueprints):
    registry = ASRegistry()
    table = PrefixTable()
    policies: dict[int, AssignmentPolicy] = {}
    pools: dict[int, AddressPool] = {}
    #: Statically-addressed server blocks, one small prefix per AS, kept
    #: disjoint from the subscriber pools so hosted websites never collide
    #: with DHCP assignments.
    server_pools: dict[int, AddressPool] = {}

    block_cursor = 0  # cursor over successive /16 blocks in usable space

    def take_prefix(length: int) -> Prefix:
        nonlocal block_cursor
        # Allocate from consecutive /16 blocks; prefixes of length >= 16
        # each consume one block (keeps allocation simple and collision-free).
        if length < 16:
            raise ValueError("topology prefixes must be /16 or smaller pools")
        # Stride across /8s so allocations spread over the address space
        # the way real assignments do (Figure 1 plots per-/8 behaviour).
        top = _USABLE_SLASH8[block_cursor % len(_USABLE_SLASH8)]
        second = (block_cursor // len(_USABLE_SLASH8)) % 256
        block_cursor += 1
        return Prefix((top << 24) | (second << 16), length)

    for blueprint in blueprints:
        registry.add(
            ASInfo(
                asn=blueprint.asn,
                name=blueprint.name,
                as_type=blueprint.as_type,
                org_history=[
                    OrgRecord(config.start_day - 200, blueprint.org, blueprint.country),
                    OrgRecord(config.start_day + 400, blueprint.org, blueprint.country),
                ],
            )
        )
        prefix = take_prefix(blueprint.prefix_length)
        table.add(Route(prefix, blueprint.asn))
        pool = AddressPool([prefix])
        pools[blueprint.asn] = pool
        server_prefix = take_prefix(22)
        table.add(Route(server_prefix, blueprint.asn))
        server_pools[blueprint.asn] = AddressPool([server_prefix])
        rng = stable_rng(config.seed, "policy", blueprint.asn)
        if blueprint.policy == "periodic":
            policies[blueprint.asn] = PeriodicReassignment.create(
                pool, blueprint.period_days, rng
            )
        else:
            policies[blueprint.asn] = StaticAssignment.create(pool, rng)

    # The §7.3 bulk transfer: Verizon re-originates half its pool via MCI.
    if config.prefix_transfer_day is not None:
        verizon_prefix = table.prefixes_of(19262)[0]
        moved = Prefix(verizon_prefix.network, verizon_prefix.length + 1)
        after = table.copy()
        after.add(Route(moved, 701))
        routing = RoutingHistory(
            [(0, table), (config.prefix_transfer_day, after)]
        )
    else:
        routing = RoutingHistory.constant(table)
    return registry, routing, policies, pools, server_pools


# ---------------------------------------------------------------------------
# Device fleet
# ---------------------------------------------------------------------------

def _group_members(blueprints, group):
    members = [bp for bp in blueprints if bp.group == group]
    if not members:
        raise ValueError(f"no ASes in group {group!r}")
    return members


def _build_devices(config, blueprints):
    rng = stable_rng(config.seed, "fleet")
    catalog = config.catalog
    subscriber_counters: dict[int, int] = {}
    private_cas: dict[tuple[str, int], PrivateCA] = {}
    devices: list[Device] = []

    def next_subscriber(asn: int) -> int:
        index = subscriber_counters.get(asn, 0)
        subscriber_counters[asn] = index + 1
        return index

    def pick_as(profile_name: str) -> int:
        affinity = _PROFILE_AFFINITY[profile_name]
        group = rng.choices(list(affinity), weights=list(affinity.values()), k=1)[0]
        members = _group_members(blueprints, group)
        chosen = rng.choices(members, weights=[bp.weight for bp in members], k=1)[0]
        return chosen.asn

    def private_ca_for(profile: VendorProfile, device_index: int) -> PrivateCA:
        if profile.ca_scope == "vendor":
            ca_index = 0
            name = Name.common_name(profile.issuer_text or f"{profile.name} CA")
        else:
            ca_index = device_index // profile.devices_per_ca
            name = Name.build(
                CN=f"{profile.name}-site-{ca_index} CA", O=f"Site {ca_index}"
            )
        key = (profile.name, ca_index)
        existing = private_cas.get(key)
        if existing is None:
            ca_rng = stable_rng(config.seed, "private-ca", profile.name, ca_index)
            existing = PrivateCA(
                name=name,
                keypair=generate_keypair(ca_rng, config.key_bits),
            )
            private_cas[key] = existing
        return existing

    shared_keys = {
        profile.name: generate_keypair(
            stable_rng(config.seed, "vendor-key", profile.name), config.key_bits
        )
        for profile in catalog
    }

    profile_choices = rng.choices(
        catalog, weights=[p.weight for p in catalog], k=config.n_devices
    )
    span = config.end_day - config.start_day
    per_profile_counter: dict[str, int] = {}

    # Firmware build dates are shared across a product line (a handful of
    # builds per vendor), so FIRMWARE_EPOCH Not Before values collide
    # massively across devices — as in the real invalid-cert population.
    firmware_builds = {
        profile.name: [
            config.start_day - stable_rng(config.seed, "fw", profile.name, i).randrange(1000, 4000)
            for i in range(profile.firmware_build_count)
        ]
        for profile in catalog
    }

    for device_id, profile in enumerate(profile_choices):
        device_index = per_profile_counter.get(profile.name, 0)
        per_profile_counter[profile.name] = device_index + 1

        if rng.random() < config.initially_active:
            active_from = config.start_day - rng.randrange(30, 700)
        else:
            active_from = config.start_day + rng.randrange(span)
        active_until = config.end_day + 100
        if rng.random() < 0.06:  # a few devices retire mid-dataset
            active_until = active_from + rng.randrange(60, span)

        cert_scope = None
        if profile.cert_batch_size > 1:
            # Shared-certificate batches rotate together, so the whole
            # batch must agree on its provisioning day.
            cert_scope = device_index // profile.cert_batch_size
            batch_rng = stable_rng(config.seed, "batch", profile.name, cert_scope)
            active_from = config.start_day - batch_rng.randrange(30, 700)
            active_until = config.end_day + 100

        home_asn = pick_as(profile.name)
        locations = [Location(active_from, home_asn, next_subscriber(home_asn))]

        if profile.name == "playbook":
            # Mobile: hop between carriers every few months.
            hop_day = active_from
            while True:
                hop_day += rng.randrange(60, 200)
                if hop_day >= config.end_day:
                    break
                asn = pick_as(profile.name)
                locations.append(Location(hop_day, asn, next_subscriber(asn)))
        elif rng.random() < config.mover_fraction:
            move_day = config.start_day + rng.randrange(span)
            if rng.random() < config.cross_country_fraction:
                # Force a different-country AS by resampling.
                home_country = _country_of(blueprints, home_asn)
                for _ in range(20):
                    asn = pick_as(profile.name)
                    if _country_of(blueprints, asn) != home_country:
                        break
            else:
                asn = pick_as(profile.name)
            if asn != home_asn:
                locations.append(Location(move_day, asn, next_subscriber(asn)))

        firmware_epoch = rng.choice(firmware_builds[profile.name])
        devices.append(
            Device(
                device_id=device_id,
                profile=profile,
                world_seed=config.seed,
                active_from=active_from,
                active_until=active_until,
                locations=locations,
                shared_keypair=shared_keys[profile.name],
                private_ca=(
                    private_ca_for(profile, device_index)
                    if profile.issuer_scheme is IssuerScheme.PRIVATE_CA
                    else None
                ),
                firmware_epoch_day=firmware_epoch,
                key_bits=config.key_bits,
                cert_scope=cert_scope,
            )
        )
    return devices


def _country_of(blueprints, asn):
    for blueprint in blueprints:
        if blueprint.asn == asn:
            return blueprint.country
    raise KeyError(asn)


# ---------------------------------------------------------------------------
# Website fleet
# ---------------------------------------------------------------------------

#: Where websites live: mostly hosting/content networks, with a meaningful
#: share on access and enterprise ASes (Table 2: valid certificates split
#: ~47 % transit/access vs ~43 % content).
_WEBSITE_GROUP_WEIGHTS = {
    "hosting": 0.55,
    "generic-access": 0.25,
    "enterprise": 0.12,
    "us-static": 0.05,
    "asia-static": 0.03,
}


def _build_websites(config, blueprints, hierarchy, server_pools):
    rng = stable_rng(config.seed, "websites")
    host_cursor: dict[int, int] = {}
    websites: list[Website] = []

    def take_ips(asn: int, count: int) -> list[int]:
        pool = server_pools[asn]
        start = host_cursor.get(asn, 0)
        host_cursor[asn] = start + count
        return [pool.address_at((start + i) % pool.size) for i in range(count)]

    groups = list(_WEBSITE_GROUP_WEIGHTS)
    group_weights = list(_WEBSITE_GROUP_WEIGHTS.values())
    for website_id in range(config.n_websites):
        group = rng.choices(groups, weights=group_weights, k=1)[0]
        members = _group_members(blueprints, group)
        blueprint = rng.choices(members, weights=[bp.weight for bp in members], k=1)[0]
        # Replication factor: overwhelmingly single-host with a CDN tail.
        roll = rng.random()
        if roll < 0.88:
            replicas = 1
        elif roll < 0.97:
            replicas = rng.randrange(2, 6)
        else:
            replicas = rng.randrange(10, 40)
        active_from = config.start_day - rng.randrange(0, 600)
        websites.append(
            Website(
                website_id=website_id,
                domain=f"site{website_id:04d}.example.com",
                ca=hierarchy.choose_issuer(rng),
                world_seed=config.seed,
                active_from=active_from,
                active_until=config.end_day + 100,
                host_ips=take_ips(blueprint.asn, replicas),
                asn=blueprint.asn,
                heartbleed_day=config.heartbleed_day,
                vulnerable=rng.random() < config.heartbleed_vulnerable_fraction,
            )
        )
    return websites
