"""IP address assignment policies.

Models how access ISPs hand addresses to subscribers, which drives two of
the paper's central phenomena:

* **scan duplicates** (§6.2) — a device whose address changes mid-scan can
  be observed at two addresses in one scan;
* **IP-level vs AS-level linking consistency** (§6.4) — German access ISPs
  (Deutsche Telekom, Vodafone, Telefonica) force daily reassignment, so
  linking on stable certificate features shows low IP-level but high
  AS-level consistency;
* **reassignment-policy inference** (§7.4 / Figure 11) — most ASes are
  nearly fully static, a few are nearly fully dynamic.

Assignments are *collision-free by construction*: each AS owns an
:class:`AddressPool`, and each policy maps (subscriber, epoch) to a pool
position through an affine permutation, so no two subscribers of one AS
ever share an address at the same instant.  Everything is deterministic
from the pool and policy parameters.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..net.ip import Prefix

__all__ = [
    "AddressPool",
    "AssignmentPolicy",
    "StaticAssignment",
    "PeriodicReassignment",
    "HOURS_PER_DAY",
]

HOURS_PER_DAY = 24.0


class AddressPool:
    """The address space one AS assigns subscribers from.

    Positions ``0..size-1`` map onto the concatenation of the pool's
    prefixes in order.
    """

    def __init__(self, prefixes: Sequence[Prefix]) -> None:
        if not prefixes:
            raise ValueError("address pool needs at least one prefix")
        self._prefixes = tuple(prefixes)
        self._offsets: list[int] = []
        total = 0
        for prefix in self._prefixes:
            self._offsets.append(total)
            total += prefix.size
        self._size = total

    @property
    def size(self) -> int:
        """Total number of assignable addresses."""
        return self._size

    @property
    def prefixes(self) -> tuple[Prefix, ...]:
        return self._prefixes

    def address_at(self, position: int) -> int:
        """Map a pool position to a concrete IPv4 address."""
        if not 0 <= position < self._size:
            raise IndexError(f"pool position {position} out of range")
        # Linear scan: pools hold a handful of prefixes.
        for prefix, offset in zip(reversed(self._prefixes), reversed(self._offsets)):
            if position >= offset:
                return prefix.first + (position - offset)
        raise AssertionError("unreachable")

    def contains(self, ip: int) -> bool:
        """Is the address part of this pool?"""
        return any(prefix.contains(ip) for prefix in self._prefixes)


def _coprime_stride(rng: random.Random, size: int) -> int:
    """A stride coprime to ``size`` so the affine map permutes positions."""
    if size == 1:
        return 1
    while True:
        stride = rng.randrange(1, size)
        if math.gcd(stride, size) == 1:
            return stride


@dataclass(frozen=True)
class StaticAssignment:
    """Every subscriber keeps one address forever."""

    pool: AddressPool
    stride: int
    offset: int

    @classmethod
    def create(cls, pool: AddressPool, rng: random.Random) -> "StaticAssignment":
        return cls(pool, _coprime_stride(rng, pool.size), rng.randrange(pool.size))

    @property
    def capacity(self) -> int:
        """Collision-free subscriber capacity (the whole pool)."""
        return self.pool.size

    def epoch(self, day: int, hour: float = 0.0) -> int:
        """Static pools have a single eternal epoch."""
        return 0

    def address(self, subscriber: int, day: int, hour: float = 0.0) -> int:
        """The subscriber's (permanent) address."""
        position = (subscriber * self.stride + self.offset) % self.pool.size
        return self.pool.address_at(position)

    def reassignment_hour(self, subscriber: int, day: int) -> float:
        """Static pools never reassign mid-day."""
        return -1.0


@dataclass(frozen=True)
class PeriodicReassignment:
    """Subscribers receive a fresh address every ``period_days``.

    Models forced-reconnect ISPs (period 1 ≈ Deutsche Telekom's daily
    churn) as well as slower lease-rollover regimes.  Each subscriber's
    reassignment lands at a per-subscriber pseudo-random hour of the day,
    which is what makes mid-scan address changes (scan duplicates) possible.

    Within an epoch, addresses come from an affine permutation; adjacent
    epochs draw from *disjoint pool halves* (by epoch parity), so even
    while a flip is in progress — some subscribers on the old epoch, some
    on the new — no two subscribers ever hold the same address.
    """

    pool: AddressPool
    period_days: int
    stride: int
    epoch_stride: int
    offset: int
    hour_salt: int

    @classmethod
    def create(
        cls, pool: AddressPool, period_days: int, rng: random.Random
    ) -> "PeriodicReassignment":
        if period_days < 1:
            raise ValueError(f"period must be >= 1 day, got {period_days}")
        if pool.size < 2:
            raise ValueError("periodic pools need at least two addresses")
        half = pool.size // 2
        return cls(
            pool=pool,
            period_days=period_days,
            stride=_coprime_stride(rng, half),
            epoch_stride=rng.randrange(1, max(2, half)),
            offset=rng.randrange(half),
            hour_salt=rng.getrandbits(32),
        )

    def reassignment_hour(self, subscriber: int, day: int) -> float:
        """Hour-of-day at which this subscriber's address flips on ``day``.

        Returns -1.0 when no reassignment happens on that day.
        """
        if day % self.period_days != 0:
            return -1.0
        mixed = (subscriber * 2654435761 + self.hour_salt) & 0xFFFFFFFF
        return (mixed / 0x100000000) * HOURS_PER_DAY

    def epoch(self, day: int, hour: float = 0.0, subscriber: int = 0) -> int:
        """The reassignment epoch in force for ``subscriber`` at (day, hour)."""
        base_epoch = day // self.period_days
        flip_hour = self.reassignment_hour(subscriber, day)
        if flip_hour >= 0.0 and hour < flip_hour:
            # The flip to this epoch has not happened yet today.
            return base_epoch - 1
        return base_epoch

    @property
    def capacity(self) -> int:
        """Collision-free subscriber capacity (half the pool)."""
        return self.pool.size // 2

    def address(self, subscriber: int, day: int, hour: float = 0.0) -> int:
        """Address held by the subscriber at the given instant."""
        if subscriber >= self.capacity:
            raise ValueError(
                f"subscriber {subscriber} exceeds pool capacity {self.capacity}"
            )
        epoch = self.epoch(day, hour, subscriber)
        half = self.capacity
        position = (
            subscriber * self.stride + epoch * self.epoch_stride + self.offset
        ) % half
        return self.pool.address_at(position + (epoch % 2) * half)


AssignmentPolicy = StaticAssignment | PeriodicReassignment
