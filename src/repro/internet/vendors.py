"""Vendor behaviour profiles.

Each :class:`VendorProfile` encodes how one family of Internet-connected
devices generates its SSL certificate: who the issuer claims to be, how the
subject Common Name is formed, whether the key pair is shared vendor-wide /
stable per device / fresh per reissue, how often the firmware reissues, and
which extensions appear.  The catalog in :func:`standard_catalog` is
calibrated to the populations the paper names:

* **Lancom Systems** — one vendor-wide key pair shared by every device
  (4.59M certificates, 6.5 % of all invalid ones, share a single key);
  issuer ``www.lancom-systems.de`` is the top invalid issuer of Table 1.
* **FRITZ!Box (AVM)** — per-device stable keys, frequent reissue, SAN
  ``fritz.fonwlan.box`` (+ a per-device ``myfritz.net`` dyndns name on
  many units), deployed overwhelmingly in German daily-churn ISPs — the
  population behind the public-key linking case study of §6.4.2.
* **Generic home routers** — subject *and* issuer ``192.168.1.1`` (the
  2.44M-certificate Common Name of Table 1).
* **Western Digital My Cloud** — issuer ``remotewd.com``, per-device stable
  ``WD2GO <id>`` Common Names (the paper's CN-linking example).
* **BlackBerry PlayBook** — issuer ``PlayBook: <MAC>`` with a constant
  per-device serial, behind mobile carriers (the IN+SN case study).
* **Enterprise gateways** — leaves signed by per-site private CAs, the
  11.99 % "signed by another untrusted certificate" class with its 1.7M
  distinct parent keys.
* plus empty-issuer devices, version-1 legacy devices, IP cameras,
  printers/IPTV/IP-phones, and a small CRL/AIA/OCSP/policy-bearing class
  that drives the rarely-populated rows of Tables 5 and 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DeviceType",
    "IssuerScheme",
    "SubjectScheme",
    "KeyPolicy",
    "SerialPolicy",
    "NotBeforeMode",
    "ValidityChoice",
    "VendorProfile",
    "standard_catalog",
]


class DeviceType(enum.Enum):
    """Device classes of Table 4."""

    HOME_ROUTER = "Home router/cable modem"
    UNKNOWN = "Unknown"
    VPN = "VPN"
    REMOTE_STORAGE = "Remote storage"
    REMOTE_ADMIN = "Remote administration"
    FIREWALL = "Firewall"
    IP_CAMERA = "IP camera"
    OTHER = "Other (IPTV, IP phone, Alternate CA, Printer)"


class IssuerScheme(enum.Enum):
    """How the issuer name is formed."""

    FIXED = "fixed"              # vendor-wide constant string
    EMPTY = "empty"              # the empty-string issuer of Table 1
    PRIVATE_IP = "private-ip"    # e.g. 192.168.1.1
    PER_DEVICE = "per-device"    # e.g. "PlayBook: <MAC>"
    SAME_AS_SUBJECT = "same-as-subject"
    PRIVATE_CA = "private-ca"    # signed by an untrusted per-site CA


class SubjectScheme(enum.Enum):
    """How the subject Common Name is formed."""

    FIXED = "fixed"                  # vendor-wide constant
    EMPTY = "empty"
    PRIVATE_IP_SHARED = "private-ip-shared"    # everyone is 192.168.1.1
    PRIVATE_IP_PER_DEVICE = "private-ip-per-device"
    PER_DEVICE = "per-device"        # stable unique CN, e.g. WD2GO <id>
    PER_REISSUE = "per-reissue"      # CN changes on every reissue
    DYNDNS = "dyndns"                # <id>.<dyndns-domain>


class KeyPolicy(enum.Enum):
    """Key-pair lifecycle."""

    VENDOR_SHARED = "vendor-shared"   # one key pair for the whole fleet
    DEVICE_STABLE = "device-stable"   # unique per device, kept across reissues
    PER_REISSUE = "per-reissue"       # regenerated with every certificate


class SerialPolicy(enum.Enum):
    """Serial-number lifecycle."""

    RANDOM = "random"                 # fresh random serial per certificate
    DEVICE_CONSTANT = "device-constant"  # firmware bakes in one serial
    VENDOR_CONSTANT = "vendor-constant"  # the whole fleet shares one serial


class NotBeforeMode(enum.Enum):
    """Where the Not Before date comes from (drives Figure 5's bimodality)."""

    AT_ISSUE = "at-issue"             # device clock is right: NB ≈ issue day
    FIRMWARE_EPOCH = "firmware-epoch" # device clock reset to firmware build


@dataclass(frozen=True)
class ValidityChoice:
    """One weighted option for a profile's validity period."""

    days: int
    weight: float


@dataclass(frozen=True)
class VendorProfile:
    """Full behavioural description of one device family."""

    name: str
    device_type: DeviceType
    weight: float                       # share of the device population

    issuer_scheme: IssuerScheme
    subject_scheme: SubjectScheme
    key_policy: KeyPolicy
    serial_policy: SerialPolicy = SerialPolicy.RANDOM
    not_before_mode: NotBeforeMode = NotBeforeMode.AT_ISSUE

    issuer_text: str = ""               # for FIXED / PER_DEVICE format
    subject_text: str = ""              # for FIXED / PER_DEVICE / DYNDNS format
    version: int = 3

    #: Days between reissues; None means the certificate is never reissued.
    reissue_period_days: Optional[int] = None

    validity_choices: tuple[ValidityChoice, ...] = (
        ValidityChoice(days=7300, weight=1.0),   # 20 years, the invalid median
    )

    #: SAN entries shared by the whole fleet (e.g. fritz.fonwlan.box).
    san_shared: tuple[str, ...] = ()
    #: Format string for a per-device SAN entry ('{device}' placeholder).
    san_per_device: str = ""
    #: Fraction of devices of this profile that get the per-device SAN.
    san_per_device_fraction: float = 0.0

    #: Rarely-used extensions (Table 5: >99 % of invalid certs lack these).
    crl_fraction: float = 0.0           # per-device CRL distribution point
    aia_fraction: float = 0.0           # per-device AIA (caIssuers)
    ocsp_fraction: float = 0.0          # OCSP responder inside AIA
    policy_fraction: float = 0.0        # certificatePolicies OID

    #: For PRIVATE_CA profiles: devices per private CA (parent-key diversity).
    devices_per_ca: int = 3
    #: Fraction of devices whose real-time clock is dead: their Not Before
    #: collapses to the classic no-RTC default (2000-01-01 00:00:00), a
    #: value *shared across vendors* — the cross-stack coincidence class
    #: that network-fingerprint linking exists to split.
    rtc_failure_fraction: float = 0.0
    #: Devices per shared-certificate batch.  >1 models ISP-managed CPE
    #: fleets provisioned with one certificate per batch (rotated together),
    #: so the certificate appears at several addresses in every scan — the
    #: §6.2 non-unique population.
    cert_batch_size: int = 1
    #: Number of distinct firmware builds for FIRMWARE_EPOCH profiles.  A
    #: whole product line shares a handful of build dates, so Not Before
    #: values collide massively *across* devices — which is why the paper
    #: finds Not Before/Not After unusable for linking.
    firmware_build_count: int = 6
    #: PRIVATE_CA scope: 'site' creates one CA per ``devices_per_ca`` devices
    #: (the 1.7M-distinct-parent-keys pattern of §5.3); 'vendor' shares one
    #: CA across the whole fleet (the remotewd.com pattern of Table 1).
    ca_scope: str = "site"

    def picks_validity(self, rng) -> int:
        """Sample a validity period for one certificate."""
        choices = self.validity_choices
        total = sum(choice.weight for choice in choices)
        point = rng.random() * total
        for choice in choices:
            point -= choice.weight
            if point <= 0:
                return choice.days
        return choices[-1].days


def standard_catalog() -> tuple[VendorProfile, ...]:
    """The calibrated device-family catalog (weights sum to 1).

    Calibration targets (checked by the test suite and benchmarks):

    * a small fast-reissuing cohort (FRITZ!Box at ~3 days, a firmware-epoch
      budget router at ~2 days, PlayBooks at ~7) supplies the ~60 % of
      invalid certificates with single-scan lifetimes;
    * the slow majority reissues every 4–10 months or never, keeping the
      per-device certificate count — and hence the 87.9 % overall invalid
      share — in the paper's proportions;
    * self-signed ≈ 88 % / untrusted-CA-signed ≈ 12 % of invalid
      certificates, with parent-key diversity dominated by per-site CAs.
    """
    twenty_years = ValidityChoice(days=7300, weight=0.80)
    twenty_five_years = ValidityChoice(days=9125, weight=0.10)
    negative = ValidityChoice(days=-365, weight=0.06)
    millennium = ValidityChoice(days=360_000, weight=0.04)
    common_validity = (twenty_years, twenty_five_years, negative, millennium)

    return (
        # --- the fast, ephemeral cohort -----------------------------------
        VendorProfile(
            name="fritzbox",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.035,
            issuer_scheme=IssuerScheme.SAME_AS_SUBJECT,
            subject_scheme=SubjectScheme.DYNDNS,
            subject_text="myfritz.net",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=2,
            san_shared=("fritz.fonwlan.box",),
            san_per_device="{device}.myfritz.net",
            san_per_device_fraction=0.55,
            validity_choices=(ValidityChoice(days=7300, weight=1.0),),
        ),
        VendorProfile(
            # Ephemeral AND unlinkable: fresh key, shared subject, and a
            # per-device issuer with random serials — no field survives.
            name="budget-router",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.012,
            issuer_scheme=IssuerScheme.PER_DEVICE,
            issuer_text="Residential Gateway fw{build}",
            rtc_failure_fraction=0.25,
            subject_scheme=SubjectScheme.FIXED,
            subject_text="192.168.0.1",
            key_policy=KeyPolicy.PER_REISSUE,
            reissue_period_days=2,
            validity_choices=common_validity,
        ),
        VendorProfile(
            # The firmware-epoch mode of Figure 5's long tail: Not Before
            # stuck thousands of days in the past.
            name="dvr",
            device_type=DeviceType.UNKNOWN,
            weight=0.007,
            issuer_scheme=IssuerScheme.PER_DEVICE,
            issuer_text="DVR fw{build}",
            rtc_failure_fraction=0.30,
            subject_scheme=SubjectScheme.FIXED,
            subject_text="dvrdvs",
            key_policy=KeyPolicy.PER_REISSUE,
            reissue_period_days=2,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            validity_choices=common_validity,
        ),
        VendorProfile(
            name="playbook",
            device_type=DeviceType.UNKNOWN,
            weight=0.010,
            issuer_scheme=IssuerScheme.PER_DEVICE,
            issuer_text="PlayBook: {mac}",
            subject_scheme=SubjectScheme.PER_REISSUE,
            subject_text="playbook-{device}-{epoch}",
            key_policy=KeyPolicy.PER_REISSUE,
            serial_policy=SerialPolicy.DEVICE_CONSTANT,
            reissue_period_days=7,
            validity_choices=(ValidityChoice(days=7300, weight=1.0),),
        ),
        # --- the slow majority ---------------------------------------------
        VendorProfile(
            name="lancom",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.15,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="www.lancom-systems.de",
            subject_scheme=SubjectScheme.FIXED,
            subject_text="www.lancom-systems.de",
            key_policy=KeyPolicy.VENDOR_SHARED,
            reissue_period_days=200,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            validity_choices=(ValidityChoice(days=9125, weight=1.0),),
        ),
        VendorProfile(
            name="generic-router",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.20,
            issuer_scheme=IssuerScheme.PRIVATE_IP,
            subject_scheme=SubjectScheme.PRIVATE_IP_SHARED,
            key_policy=KeyPolicy.DEVICE_STABLE,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            reissue_period_days=350,
            validity_choices=common_validity,
        ),
        VendorProfile(
            name="wd-mycloud",
            device_type=DeviceType.REMOTE_STORAGE,
            weight=0.06,
            issuer_scheme=IssuerScheme.PRIVATE_CA,
            ca_scope="vendor",
            issuer_text="remotewd.com",
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="WD2GO {device}",
            key_policy=KeyPolicy.PER_REISSUE,
            reissue_period_days=250,
            validity_choices=(ValidityChoice(days=3650, weight=1.0),),
        ),
        VendorProfile(
            name="vmware",
            device_type=DeviceType.REMOTE_ADMIN,
            weight=0.06,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="VMware",
            subject_scheme=SubjectScheme.PER_REISSUE,
            subject_text="vmware-host-{device}-{epoch}",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=400,
            validity_choices=common_validity,
        ),
        VendorProfile(
            name="empty-issuer",
            device_type=DeviceType.UNKNOWN,
            weight=0.079,
            issuer_scheme=IssuerScheme.EMPTY,
            subject_scheme=SubjectScheme.EMPTY,
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=400,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            validity_choices=common_validity,
        ),
        VendorProfile(
            name="enterprise-gateway",
            device_type=DeviceType.VPN,
            weight=0.08,
            issuer_scheme=IssuerScheme.PRIVATE_CA,
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="vpn-{device}.corp.internal",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=300,
            devices_per_ca=3,
            validity_choices=(ValidityChoice(days=1825, weight=1.0),),
        ),
        VendorProfile(
            # Vendor-CA-signed SSL-VPN concentrators: one big VPN-classed
            # issuer, the Table 4 VPN population at vendor scale.
            name="vpn-concentrator",
            device_type=DeviceType.VPN,
            weight=0.02,
            issuer_scheme=IssuerScheme.PRIVATE_CA,
            ca_scope="vendor",
            issuer_text="SSL-VPN Gateway CA",
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="sslvpn-{device}.corp.example",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=250,
            validity_choices=(ValidityChoice(days=1825, weight=1.0),),
        ),
        VendorProfile(
            name="enterprise-firewall",
            device_type=DeviceType.FIREWALL,
            weight=0.03,
            issuer_scheme=IssuerScheme.PRIVATE_CA,
            ca_scope="vendor",
            issuer_text="FortiGate Firewall CA",
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="fw-{device}.corp.internal",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=350,
            validity_choices=(ValidityChoice(days=1825, weight=1.0),),
        ),
        VendorProfile(
            name="ip-camera",
            device_type=DeviceType.IP_CAMERA,
            weight=0.05,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="IP Camera",
            subject_scheme=SubjectScheme.PRIVATE_IP_PER_DEVICE,
            key_policy=KeyPolicy.DEVICE_STABLE,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            reissue_period_days=300,
            validity_choices=common_validity,
        ),
        VendorProfile(
            name="legacy-v1",
            device_type=DeviceType.UNKNOWN,
            weight=0.072,
            issuer_scheme=IssuerScheme.PRIVATE_IP,
            subject_scheme=SubjectScheme.PRIVATE_IP_SHARED,
            key_policy=KeyPolicy.DEVICE_STABLE,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            rtc_failure_fraction=0.10,
            version=1,
            reissue_period_days=None,
            validity_choices=(ValidityChoice(days=3650, weight=1.0),),
        ),
        VendorProfile(
            # ISP-managed CPE: the operator provisions one certificate per
            # batch of subscriber boxes and rotates it for the whole batch,
            # so each certificate is served from several addresses in every
            # scan — the §6.2 dedup rule must exclude these.
            name="cpe-fleet",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.025,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="ISP Managed CPE",
            subject_scheme=SubjectScheme.FIXED,
            subject_text="cpe.isp.example",
            key_policy=KeyPolicy.DEVICE_STABLE,
            serial_policy=SerialPolicy.RANDOM,
            reissue_period_days=45,
            cert_batch_size=5,
            validity_choices=(ValidityChoice(days=7300, weight=1.0),),
        ),
        VendorProfile(
            # The certificate is baked into the firmware image: every
            # device of a build serves byte-identical bytes, so one
            # certificate shows up at many addresses per scan — the
            # population the §6.2 dedup rule exists to exclude.
            name="firmware-baked",
            device_type=DeviceType.HOME_ROUTER,
            weight=0.02,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="Vigor Router",
            subject_scheme=SubjectScheme.FIXED,
            subject_text="Vigor Router",
            key_policy=KeyPolicy.VENDOR_SHARED,
            serial_policy=SerialPolicy.VENDOR_CONSTANT,
            not_before_mode=NotBeforeMode.FIRMWARE_EPOCH,
            reissue_period_days=None,
            firmware_build_count=4,
            validity_choices=(ValidityChoice(days=7300, weight=1.0),),
        ),
        VendorProfile(
            name="misc-appliance",
            device_type=DeviceType.OTHER,
            weight=0.065,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="Embedded Web Server",
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="appliance-{device}.local",
            key_policy=KeyPolicy.DEVICE_STABLE,
            reissue_period_days=None,
            validity_choices=common_validity,
        ),
        VendorProfile(
            # Broken firmware claiming a nonsense X.509 version — the
            # 89,667 version-2/4/13 certificates the paper disregards
            # (footnote 5).  The validation layer classifies these as
            # malformed and removes them before any analysis.
            name="broken-version",
            device_type=DeviceType.UNKNOWN,
            weight=0.005,
            issuer_scheme=IssuerScheme.FIXED,
            issuer_text="SSL Server",
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="host-{device}",
            key_policy=KeyPolicy.DEVICE_STABLE,
            version=4,
            reissue_period_days=None,
            validity_choices=(ValidityChoice(days=3650, weight=1.0),),
        ),
        VendorProfile(
            name="managed-gateway",
            device_type=DeviceType.REMOTE_ADMIN,
            weight=0.02,
            issuer_scheme=IssuerScheme.PRIVATE_CA,
            subject_scheme=SubjectScheme.PER_DEVICE,
            subject_text="mgmt-{device}.example.net",
            key_policy=KeyPolicy.PER_REISSUE,
            reissue_period_days=120,
            devices_per_ca=4,
            crl_fraction=0.55,
            aia_fraction=0.45,
            ocsp_fraction=0.06,
            policy_fraction=0.05,
            validity_choices=(ValidityChoice(days=1825, weight=1.0),),
        ),
    )
