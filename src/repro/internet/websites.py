"""The valid side of the ecosystem: commercial CAs and the websites they sign.

The paper's comparisons need a realistic *valid* population next to the
invalid one:

* a concentrated CA market — five signing keys cover half of all valid
  certificates (§5.3), with GoDaddy/RapidSSL/PositiveSSL/GeoTrust at the
  top of Table 1;
* leaf certificates with ~1.1-year median validity and 274-day median
  observed lifetime (Figures 3 and 4), CRL/AIA/OCSP present on ~95 %;
* hosting concentrated in US content/hosting ASes (Tables 2 and 3);
* a small set of certificates replicated across many hosts (Figure 7's
  valid tail — CDN-style replication and intermediate CA certificates
  served by every customer host).

Websites reissue on certificate expiry, and roughly half of reissues keep
the old key pair (Zhang et al.'s finding, quoted in §5.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..seeding import stable_rng
from ..x509.builder import CertificateBuilder
from ..x509.certificate import Certificate
from ..x509.keys import KeyPair, generate_keypair
from ..x509.name import Name
from ..x509.truststore import TrustStore

__all__ = ["CommercialCA", "CAHierarchy", "Website", "STANDARD_CA_MARKET"]

_KEY_BITS = 128

#: (intermediate CA common name, market share) — Table 1's top issuers plus
#: a long tail.  Shares are calibrated so ~5 keys span half the leaves.
STANDARD_CA_MARKET: tuple[tuple[str, float], ...] = (
    ("Go Daddy Secure Certification Authority", 0.220),
    ("RapidSSL CA", 0.120),
    ("PositiveSSL CA 2", 0.065),
    ("Go Daddy Secure Certificate Authority - G2", 0.055),
    ("GeoTrust DV SSL CA", 0.050),
) + tuple((f"Commercial CA {i:02d}", 0.49 / 25) for i in range(25))


@dataclass(frozen=True)
class CommercialCA:
    """One CA: a root (self-signed, trusted) or an intermediate."""

    name: Name
    keypair: KeyPair
    certificate: Certificate
    is_root: bool

    @property
    def key_id(self) -> bytes:
        return self.keypair.public.fingerprint[:20]


class CAHierarchy:
    """Roots plus intermediates, with a weighted issuance market."""

    def __init__(
        self,
        world_seed: int,
        market: Sequence[tuple[str, float]] = STANDARD_CA_MARKET,
        root_count: int = 8,
        epoch_day: int = 0,
    ) -> None:
        self._world_seed = world_seed
        self.roots: list[CommercialCA] = []
        for index in range(root_count):
            rng = stable_rng(world_seed, "ca-root", index)
            keypair = generate_keypair(rng, _KEY_BITS)
            name = Name.build(CN=f"Trusted Root CA {index}", O="Root Trust Co")
            cert = (
                CertificateBuilder()
                .subject(name)
                .validity(epoch_day - 3650, epoch_day + 9125)
                .keypair(keypair)
                .serial(rng.getrandbits(63))
                .ca()
                .self_sign()
            )
            self.roots.append(CommercialCA(name, keypair, cert, is_root=True))

        self.intermediates: list[CommercialCA] = []
        self._weights: list[float] = []
        for index, (cn, weight) in enumerate(market):
            rng = stable_rng(world_seed, "ca-int", index)
            root = self.roots[index % len(self.roots)]
            keypair = generate_keypair(rng, _KEY_BITS)
            name = Name.build(CN=cn, O="Commercial CA Co")
            cert = (
                CertificateBuilder()
                .subject(name)
                .validity(epoch_day - 1825, epoch_day + 7300)
                .keypair(keypair)
                .serial(rng.getrandbits(63))
                .ca()
                .authority_key_id(root.key_id)
                .sign_with(root.name, root.keypair.private)
            )
            self.intermediates.append(CommercialCA(name, keypair, cert, is_root=False))
            self._weights.append(weight)

    def trust_store(self, extra_unused_roots: int = 0) -> TrustStore:
        """The root store (optionally padded with never-used roots, the way
        real stores carry hundreds of roots that sign nothing)."""
        store = TrustStore(root.certificate for root in self.roots)
        for index in range(extra_unused_roots):
            rng = stable_rng(self._world_seed, "ca-unused", index)
            keypair = generate_keypair(rng, _KEY_BITS)
            name = Name.build(CN=f"Dormant Root {index}", O="Legacy Trust")
            store.add(
                CertificateBuilder()
                .subject(name)
                .validity(-3650, 12000)
                .keypair(keypair)
                .serial(rng.getrandbits(63))
                .ca()
                .self_sign()
            )
        return store

    def choose_issuer(self, rng: random.Random) -> CommercialCA:
        """Market-share-weighted choice of issuing intermediate."""
        return rng.choices(self.intermediates, weights=self._weights, k=1)[0]


class Website:
    """One HTTPS website holding a valid certificate.

    Hosted at fixed addresses (hosting providers assign static IPs), with
    the whole presented chain advertised from every host — which is how
    intermediate CA certificates end up observed at enormous numbers of
    addresses (Figure 7's valid tail).
    """

    #: Epoch numbers at or above this mark the post-incident timeline.
    EMERGENCY_EPOCH_BASE = 1000

    def __init__(
        self,
        website_id: int,
        domain: str,
        ca: CommercialCA,
        world_seed: int,
        active_from: int,
        active_until: int,
        host_ips: Sequence[int],
        asn: int,
        heartbleed_day: Optional[int] = None,
        vulnerable: bool = False,
    ) -> None:
        if not host_ips:
            raise ValueError("website needs at least one host address")
        self.website_id = website_id
        self.domain = domain
        self.ca = ca
        self.active_from = active_from
        self.active_until = active_until
        self.host_ips = tuple(host_ips)
        self.asn = asn
        self._world_seed = world_seed
        site_rng = self._rng("site")
        #: Per-site fixed validity period, ~1.1-year median with a 3-year tail.
        self._validity_days = site_rng.choices(
            (398, 730, 1125), weights=(0.60, 0.25, 0.15), k=1
        )[0]
        #: Sites renew shortly before expiry.
        self._reissue_interval = self._validity_days - 30
        self._keys: dict[int, KeyPair] = {}
        self._cert_cache: dict[int, Certificate] = {}
        #: Heartbleed-style incident response (Zhang et al., quoted in
        #: §5.2): a vulnerable site reissues out of schedule within weeks
        #: of the disclosure, and — insecurely — 4.1 % of those emergency
        #: reissues keep the potentially-exposed key pair.
        self._emergency_day: Optional[int] = None
        if (
            heartbleed_day is not None
            and vulnerable
            and active_from < heartbleed_day < active_until
        ):
            self._emergency_day = heartbleed_day + site_rng.randrange(0, 21)

    def is_active(self, day: int) -> bool:
        """Does the site respond on ``day``?"""
        return self.active_from <= day <= self.active_until

    def reissue_epoch(self, day: int) -> int:
        """Which renewal generation is live on ``day``.

        Epochs at or above :attr:`EMERGENCY_EPOCH_BASE` belong to the
        post-incident timeline that starts at the emergency reissue.
        """
        if self._emergency_day is not None and day >= self._emergency_day:
            return (
                self.EMERGENCY_EPOCH_BASE
                + (day - self._emergency_day) // self._reissue_interval
            )
        return max(0, (day - self.active_from) // self._reissue_interval)

    @property
    def emergency_day(self) -> Optional[int]:
        """Day of the out-of-schedule incident reissue, if any."""
        return self._emergency_day

    def _issue_day(self, epoch: int) -> int:
        if epoch >= self.EMERGENCY_EPOCH_BASE:
            assert self._emergency_day is not None
            return (
                self._emergency_day
                + (epoch - self.EMERGENCY_EPOCH_BASE) * self._reissue_interval
            )
        return self.active_from + epoch * self._reissue_interval

    def certificate_on(self, day: int) -> Certificate:
        """The leaf certificate served on ``day``."""
        return self.certificate_for_epoch(self.reissue_epoch(day))

    def chain_on(self, day: int) -> tuple[Certificate, ...]:
        """Leaf plus the intermediate, as presented during the handshake."""
        return (self.certificate_on(day), self.ca.certificate)

    def certificate_for_epoch(self, epoch: int) -> Certificate:
        """Deterministically build the certificate of one renewal epoch."""
        cached = self._cert_cache.get(epoch)
        if cached is None:
            cached = self._build(epoch)
            self._cert_cache[epoch] = cached
        return cached

    # --- internals -----------------------------------------------------------

    def _rng(self, *scope) -> random.Random:
        return stable_rng(self._world_seed, "website", self.website_id, *scope)

    def _key_for_epoch(self, epoch: int) -> KeyPair:
        """Half of renewals keep the previous key (§5.2 / Zhang et al.) —
        except the emergency reissue, where keeping the possibly-leaked key
        is the 4.1 % insecure minority."""
        cached = self._keys.get(epoch)
        if cached is not None:
            return cached
        if epoch == self.EMERGENCY_EPOCH_BASE:
            assert self._emergency_day is not None
            previous_epoch = max(
                0, (self._emergency_day - 1 - self.active_from)
                // self._reissue_interval
            )
            if self._rng("rekey", epoch).random() < 0.041:
                key = self._key_for_epoch(previous_epoch)
            else:
                key = generate_keypair(self._rng("key", epoch), _KEY_BITS)
        elif epoch == 0 or self._rng("rekey", epoch).random() < 0.5:
            key = generate_keypair(self._rng("key", epoch), _KEY_BITS)
        else:
            key = self._key_for_epoch(epoch - 1)
        self._keys[epoch] = key
        return key

    def _build(self, epoch: int) -> Certificate:
        issue_day = self._issue_day(epoch)
        rng = self._rng("cert", epoch)
        return (
            CertificateBuilder()
            .subject(Name.build(CN=self.domain, O=f"{self.domain} Inc"))
            .serial(rng.getrandbits(63))
            .validity(issue_day, issue_day + self._validity_days)
            .keypair(self._key_for_epoch(epoch))
            .subject_alt_names([self.domain, f"www.{self.domain}"])
            .authority_key_id(self.ca.key_id)
            .crl_uris([f"http://crl.ca.example/{self.ca.name.cn}.crl"])
            .aia(
                ocsp=["http://ocsp.ca.example"],
                ca_issuers=[f"http://ca.example/{self.ca.name.cn}.crt"],
            )
            .sign_with(self.ca.name, self.ca.keypair.private)
        )
