"""Device state machines.

A :class:`Device` is one Internet-connected box (router, NAS, camera, …)
that serves an HTTPS endpoint on port 443.  Its certificate behaviour is
fully determined by its :class:`~repro.internet.vendors.VendorProfile`, its
identity, and the world seed — so the same world always regenerates
byte-identical certificates, and the scanner can ask for "the certificate
this device served on day D" without storing anything.

Reissue model: a device with ``reissue_period_days = k`` replaces its
certificate every ``k`` days (with a small per-device phase offset so whole
fleets do not reissue in lockstep).  This is the mechanism behind the
paper's headline observation that most invalid certificates are ephemeral —
seen in exactly one scan — and behind the 87.9 %-of-all-certificates figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..seeding import stable_rng
from ..x509.builder import CertificateBuilder
from ..x509.certificate import Certificate
from ..x509.keys import KeyPair, generate_keypair
from ..x509.name import Name
from ..x509.oid import OID
from .vendors import (
    IssuerScheme,
    KeyPolicy,
    NotBeforeMode,
    SerialPolicy,
    SubjectScheme,
    VendorProfile,
)

__all__ = ["Location", "PrivateCA", "Device", "DEFAULT_KEY_BITS"]

#: Small-but-real RSA moduli keep whole-world simulation fast.
DEFAULT_KEY_BITS = 128


@dataclass(frozen=True)
class Location:
    """Where a device lives from ``from_day`` onward."""

    from_day: int
    asn: int
    subscriber: int


@dataclass(frozen=True)
class PrivateCA:
    """An untrusted per-site CA that signs enterprise device certificates."""

    name: Name
    keypair: KeyPair

    @property
    def key_id(self) -> bytes:
        """Key identifier used in the AKI extension of issued leaves."""
        return self.keypair.public.fingerprint[:20]


class Device:
    """One simulated end-user device."""

    def __init__(
        self,
        device_id: int,
        profile: VendorProfile,
        world_seed: int,
        active_from: int,
        active_until: int,
        locations: list[Location],
        shared_keypair: Optional[KeyPair] = None,
        private_ca: Optional[PrivateCA] = None,
        firmware_epoch_day: int = 0,
        key_bits: int = DEFAULT_KEY_BITS,
        cert_scope: Optional[int] = None,
    ) -> None:
        if not locations:
            raise ValueError("device needs at least one location")
        if profile.key_policy is KeyPolicy.VENDOR_SHARED and shared_keypair is None:
            raise ValueError(f"profile {profile.name} needs a shared keypair")
        if profile.issuer_scheme is IssuerScheme.PRIVATE_CA and private_ca is None:
            raise ValueError(f"profile {profile.name} needs a private CA")
        self.device_id = device_id
        self.profile = profile
        self.active_from = active_from
        self.active_until = active_until
        self.locations = sorted(locations, key=lambda loc: loc.from_day)
        self._world_seed = world_seed
        self._shared_keypair = shared_keypair
        self.private_ca = private_ca
        self._firmware_epoch_day = firmware_epoch_day
        self._key_bits = key_bits
        #: When set, certificate material derives from the batch, not the
        #: device — every device of the batch serves identical certificates.
        self.cert_scope = cert_scope
        self._cert_cache: dict[int, Certificate] = {}
        self._stable_key: Optional[KeyPair] = None
        # Device-stable identity facts derive from a dedicated RNG stream.
        identity_rng = self._rng("identity")
        self.mac = ":".join(f"{identity_rng.randrange(256):02X}" for _ in range(6))
        self._private_ip = (
            f"192.168.{identity_rng.randrange(256)}.{identity_rng.randrange(1, 255)}"
        )
        self._device_token = f"{identity_rng.randrange(10 ** 6):06d}"
        self._dyndns_style = identity_rng.random()
        self._has_per_device_san = (
            identity_rng.random() < profile.san_per_device_fraction
        )
        self._rtc_failed = identity_rng.random() < profile.rtc_failure_fraction
        self._has_crl = identity_rng.random() < profile.crl_fraction
        self._has_aia = identity_rng.random() < profile.aia_fraction
        self._has_ocsp = identity_rng.random() < profile.ocsp_fraction
        self._has_policy = identity_rng.random() < profile.policy_fraction
        self._constant_serial = identity_rng.getrandbits(48)
        #: Phase offset so a fleet does not reissue in lockstep — except
        #: within a certificate batch, which rotates together.
        phase_rng = self._cert_rng("phase") if cert_scope is not None else identity_rng
        period = profile.reissue_period_days
        self._reissue_phase = phase_rng.randrange(period) if period else 0
        #: Hour-of-day at which a reissue takes effect.  Consumer devices
        #: regenerate during the nightly reconnect window (early morning),
        #: so reissues landing on a scan day leave the old certificate
        #: visible early in the sweep and the new one late — the
        #: single-scan overlap §6.3.2 tolerates.
        self._reissue_hour = phase_rng.random() * 6.0

    # --- location ---------------------------------------------------------------

    def is_active(self, day: int) -> bool:
        """Is the device online (responding to scans) on ``day``?"""
        return self.active_from <= day <= self.active_until

    def location_at(self, day: int) -> Location:
        """The device's location on ``day`` (the latest one started)."""
        current = self.locations[0]
        for location in self.locations:
            if location.from_day <= day:
                current = location
            else:
                break
        return current

    # --- certificate lifecycle ----------------------------------------------------

    def reissue_epoch(self, day: int) -> int:
        """Index of the certificate generation in force on ``day``."""
        period = self.profile.reissue_period_days
        if not period:
            return 0
        age = day - self.active_from + self._reissue_phase
        return max(0, age // period)

    def issue_day_of_epoch(self, epoch: int) -> int:
        """Day the certificate of ``epoch`` was generated."""
        period = self.profile.reissue_period_days
        if not period or epoch == 0:
            return self.active_from
        return self.active_from - self._reissue_phase + epoch * period

    def certificate_on(self, day: int) -> Certificate:
        """The certificate the device serves on ``day`` (end of day)."""
        return self.certificate_for_epoch(self.reissue_epoch(day))

    def reissue_hour_on(self, day: int) -> float:
        """Hour at which the certificate changes on ``day`` (-1 if it does not)."""
        epoch = self.reissue_epoch(day)
        if epoch > 0 and self.issue_day_of_epoch(epoch) == day:
            return self._reissue_hour
        return -1.0

    def certificate_at(self, day: int, hour: float) -> Certificate:
        """The certificate in force at an exact instant within ``day``."""
        epoch = self.reissue_epoch(day)
        flip_hour = self.reissue_hour_on(day)
        if flip_hour >= 0.0 and hour < flip_hour:
            epoch -= 1
        return self.certificate_for_epoch(epoch)

    def certificate_for_epoch(self, epoch: int) -> Certificate:
        """Deterministically (re)generate the certificate of one epoch."""
        cached = self._cert_cache.get(epoch)
        if cached is None:
            cached = self._build_certificate(epoch)
            self._cert_cache[epoch] = cached
        return cached

    # --- internals ------------------------------------------------------------------

    def _rng(self, *scope) -> random.Random:
        return stable_rng(self._world_seed, "device", self.device_id, *scope)

    def _cert_rng(self, *scope) -> random.Random:
        """RNG stream for certificate material: per batch when scoped."""
        if self.cert_scope is not None:
            return stable_rng(
                self._world_seed, "cert-batch", self.profile.name,
                self.cert_scope, *scope,
            )
        return self._rng(*scope)

    def _keypair_for_epoch(self, epoch: int) -> KeyPair:
        policy = self.profile.key_policy
        if policy is KeyPolicy.VENDOR_SHARED:
            assert self._shared_keypair is not None
            return self._shared_keypair
        if policy is KeyPolicy.DEVICE_STABLE:
            if self._stable_key is None:
                self._stable_key = generate_keypair(
                    self._cert_rng("key"), self._key_bits
                )
            return self._stable_key
        return generate_keypair(self._cert_rng("key", epoch), self._key_bits)

    def _subject_name(self, epoch: int) -> Name:
        profile = self.profile
        scheme = profile.subject_scheme
        if scheme is SubjectScheme.FIXED:
            return Name.common_name(profile.subject_text)
        if scheme is SubjectScheme.EMPTY:
            return Name.empty()
        if scheme is SubjectScheme.PRIVATE_IP_SHARED:
            return Name.common_name("192.168.1.1")
        if scheme is SubjectScheme.PRIVATE_IP_PER_DEVICE:
            return Name.common_name(self._private_ip)
        if scheme is SubjectScheme.PER_DEVICE:
            return Name.common_name(
                profile.subject_text.format(device=self._device_token, mac=self.mac)
            )
        if scheme is SubjectScheme.PER_REISSUE:
            return Name.common_name(
                profile.subject_text.format(
                    device=self._device_token, mac=self.mac, epoch=epoch
                )
            )
        if scheme is SubjectScheme.DYNDNS:
            # FRITZ!Box-style: most boxes use the plain 'fritz.box' name, a
            # sizeable minority carry dynamic-DNS Common Names (§6.4.2 finds
            # 16 % myfritz.net plus 8 % containing 'dyndns'/'selfhost').
            if self._dyndns_style < 0.25:
                return Name.common_name(f"box{self._device_token}.myfritz.net")
            if self._dyndns_style < 0.33:
                return Name.common_name(f"host{self._device_token}.dyndns.org")
            if self._dyndns_style < 0.37:
                return Name.common_name(f"unit{self._device_token}.selfhost.de")
            return Name.common_name("fritz.box")
        raise AssertionError(f"unhandled subject scheme {scheme}")

    def _issuer_name(self, subject: Name) -> Name:
        profile = self.profile
        scheme = profile.issuer_scheme
        if scheme is IssuerScheme.FIXED:
            return Name.common_name(profile.issuer_text)
        if scheme is IssuerScheme.EMPTY:
            return Name.empty()
        if scheme is IssuerScheme.PRIVATE_IP:
            return Name.common_name("192.168.1.1")
        if scheme is IssuerScheme.PER_DEVICE:
            return Name.common_name(
                profile.issuer_text.format(
                    device=self._device_token,
                    mac=self.mac,
                    build=self._firmware_epoch_day,
                )
            )
        if scheme is IssuerScheme.SAME_AS_SUBJECT:
            return subject
        if scheme is IssuerScheme.PRIVATE_CA:
            assert self.private_ca is not None
            return self.private_ca.name
        raise AssertionError(f"unhandled issuer scheme {scheme}")

    def _serial(self, epoch: int) -> int:
        policy = self.profile.serial_policy
        if policy is SerialPolicy.DEVICE_CONSTANT:
            return self._constant_serial
        if policy is SerialPolicy.VENDOR_CONSTANT:
            return 1
        return self._cert_rng("serial", epoch).getrandbits(63)

    def _not_before(self, epoch: int, rng: random.Random) -> tuple[int, int]:
        """(day, seconds-in-day) of the certificate's Not Before.

        AT_ISSUE devices stamp the actual generation instant — second
        resolution, so cross-device collisions are rare.  FIRMWARE_EPOCH
        devices stamp the firmware build time, shared across the build.
        """
        issue_day = self.issue_day_of_epoch(epoch)
        if self._rtc_failed:
            # Dead clock: the stack stamps its epoch default, 2000-01-01
            # 00:00:00 — day 0 of simulated time, shared across vendors.
            return 0, 0
        if self.profile.not_before_mode is NotBeforeMode.FIRMWARE_EPOCH:
            return self._firmware_epoch_day, 0
        # Device clocks are mostly right (Figure 5: ~70 % within 4 days of
        # first sighting) but a few run ahead, yielding Not Before dates
        # *after* the first scan that saw the certificate (2.9 %).
        seconds = rng.randrange(86400)
        if rng.random() < 0.04:
            return issue_day + rng.randrange(1, 30), seconds
        # Most devices stamp the generation day itself; a minority carry a
        # small lag (cert generated at provisioning, deployed days later).
        offset = 0 if rng.random() < 0.75 else rng.randrange(1, 4)
        return issue_day - offset, seconds

    def _build_certificate(self, epoch: int) -> Certificate:
        profile = self.profile
        cert_rng = self._cert_rng("cert", epoch)
        keypair = self._keypair_for_epoch(epoch)
        subject = self._subject_name(epoch)
        issuer = self._issuer_name(subject)
        not_before, nb_secs = self._not_before(epoch, cert_rng)
        validity_days = profile.picks_validity(cert_rng)

        builder = (
            CertificateBuilder()
            .version(profile.version, strict=False)
            .serial(self._serial(epoch))
            .subject(subject)
            .issuer(issuer)
            .validity(
                not_before, not_before + validity_days,
                not_before_secs=nb_secs, not_after_secs=nb_secs,
            )
            .keypair(keypair)
        )
        if profile.version == 3:
            self._attach_extensions(builder)
        if profile.issuer_scheme is IssuerScheme.PRIVATE_CA:
            assert self.private_ca is not None
            builder.authority_key_id(self.private_ca.key_id)
            return builder.sign_with(
                self.private_ca.name, self.private_ca.keypair.private
            )
        return builder.self_sign(keypair.private)

    def _attach_extensions(self, builder: CertificateBuilder) -> None:
        profile = self.profile
        sans = list(profile.san_shared)
        if self._has_per_device_san and profile.san_per_device:
            sans.append(profile.san_per_device.format(device=self._device_token))
        builder.subject_alt_names(sans)
        if self._has_crl:
            builder.crl_uris(
                [f"http://crl.{profile.name}.example/{self._device_token}.crl"]
            )
        if self._has_aia or self._has_ocsp:
            ocsp = (
                [f"http://ocsp.{profile.name}.example/{self._device_token}"]
                if self._has_ocsp
                else []
            )
            ca_issuers = (
                [f"http://ca.{profile.name}.example/{self._device_token}.crt"]
                if self._has_aia
                else []
            )
            builder.aia(ocsp=ocsp, ca_issuers=ca_issuers)
        if self._has_policy:
            builder.policies(
                [OID.parse(f"1.3.6.1.4.1.54321.{int(self._device_token)}")]
            )
