"""The simulated Internet: devices, vendors, websites, DHCP, population."""

from .devices import Device, Location, PrivateCA
from .dhcp import AddressPool, PeriodicReassignment, StaticAssignment
from .population import ASBlueprint, World, WorldConfig, build_world, standard_topology
from .vendors import (
    DeviceType,
    IssuerScheme,
    KeyPolicy,
    NotBeforeMode,
    SerialPolicy,
    SubjectScheme,
    ValidityChoice,
    VendorProfile,
    standard_catalog,
)
from .websites import CAHierarchy, CommercialCA, Website

__all__ = [
    "Device",
    "Location",
    "PrivateCA",
    "AddressPool",
    "PeriodicReassignment",
    "StaticAssignment",
    "ASBlueprint",
    "World",
    "WorldConfig",
    "build_world",
    "standard_topology",
    "DeviceType",
    "IssuerScheme",
    "KeyPolicy",
    "NotBeforeMode",
    "SerialPolicy",
    "SubjectScheme",
    "ValidityChoice",
    "VendorProfile",
    "standard_catalog",
    "CAHierarchy",
    "CommercialCA",
    "Website",
]
