"""X.501 distinguished names.

A :class:`Name` is an ordered sequence of (attribute-OID, value) pairs —
enough to express every subject/issuer the paper encounters, from
``CN=Go Daddy Secure Certification Authority, O=GoDaddy.com`` down to the
malformed device names the invalid-cert population is full of: bare private
IP addresses, empty strings, and vendor boilerplate.

Names DER-encode as the standard ``RDNSequence`` (each RDN a single-valued
SET), round-trip exactly, and hash/compare structurally so they can key
dictionaries in the linking pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from . import oid as oids
from .asn1 import DERReader, encode_sequence, encode_set, encode_utf8_string
from .oid import OID

__all__ = ["Name"]


@dataclass(frozen=True)
class Name:
    """An ordered multi-attribute distinguished name."""

    attributes: tuple[tuple[OID, str], ...]

    @classmethod
    def build(cls, **kwargs: str) -> "Name":
        """Build from short attribute names: ``Name.build(CN='x', O='y')``.

        Attribute order follows the call order (Python kwargs preserve it).
        """
        pairs = tuple(
            (oids.attribute_oid(short), value) for short, value in kwargs.items()
        )
        return cls(pairs)

    @classmethod
    def common_name(cls, value: str) -> "Name":
        """A CN-only name — by far the most common shape on devices."""
        return cls(((oids.CN, value),))

    @classmethod
    def empty(cls) -> "Name":
        """The empty name (attribute-less); real devices do emit these."""
        return cls(())

    def get(self, short_name: str) -> Optional[str]:
        """First value of the named attribute, or None."""
        wanted = oids.attribute_oid(short_name)
        for attr_oid, value in self.attributes:
            if attr_oid == wanted:
                return value
        return None

    @property
    def cn(self) -> Optional[str]:
        """The Common Name, or None if absent."""
        return self.get("CN")

    def is_empty(self) -> bool:
        """True for the attribute-less name."""
        return not self.attributes

    def rfc4514(self) -> str:
        """Human-readable ``CN=x, O=y`` rendering."""
        parts = []
        for attr_oid, value in self.attributes:
            short = oids.DN_SHORT_NAMES.get(attr_oid, attr_oid.dotted())
            parts.append(f"{short}={value}")
        return ", ".join(parts)

    def __str__(self) -> str:
        return self.rfc4514()

    def __iter__(self) -> Iterator[tuple[OID, str]]:
        return iter(self.attributes)

    # --- DER ----------------------------------------------------------------

    def to_der(self) -> bytes:
        """Encode as an RDNSequence (one single-valued RDN per attribute)."""
        rdns = []
        for attr_oid, value in self.attributes:
            attribute = encode_sequence(
                _encode_oid(attr_oid), encode_utf8_string(value)
            )
            rdns.append(encode_set([attribute]))
        return encode_sequence(*rdns)

    @classmethod
    def from_der_reader(cls, reader: DERReader) -> "Name":
        """Decode an RDNSequence from a reader positioned at it."""
        seq = reader.enter_sequence()
        attributes: list[tuple[OID, str]] = []
        while not seq.at_end():
            rdn = seq.enter_set()
            while not rdn.at_end():
                attribute = rdn.enter_sequence()
                attr_oid = attribute.read_oid()
                value = attribute.read_string()
                attributes.append((attr_oid, value))
        return cls(tuple(attributes))

    @classmethod
    def from_der(cls, data: bytes) -> "Name":
        """Decode a standalone RDNSequence encoding."""
        return cls.from_der_reader(DERReader(data))

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[OID, str]]) -> "Name":
        """Build from explicit (OID, value) pairs."""
        return cls(tuple(pairs))


def _encode_oid(value: OID) -> bytes:
    from .asn1 import encode_oid

    return encode_oid(value)
