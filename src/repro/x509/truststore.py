"""Root trust store.

The paper validates against the 222 root CA certificates shipped in the
OS X 10.9.2 root store.  :class:`TrustStore` is the simulated equivalent:
a fixed set of self-signed root certificates, indexed by subject name and
by public-key fingerprint so chain construction can terminate quickly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .certificate import Certificate
from .name import Name

__all__ = ["TrustStore"]


class TrustStore:
    """An immutable-after-construction set of trusted roots."""

    def __init__(self, roots: Iterable[Certificate] = ()) -> None:
        self._by_fingerprint: dict[bytes, Certificate] = {}
        self._by_subject: dict[Name, list[Certificate]] = {}
        self._by_key: dict[bytes, list[Certificate]] = {}
        for root in roots:
            self.add(root)

    def add(self, root: Certificate) -> None:
        """Trust a root certificate.

        Roots are conventionally self-signed, but the store does not force
        it — some historic root stores contained oddities, and trusting is
        a policy decision, not a structural one.
        """
        if root.fingerprint in self._by_fingerprint:
            return
        self._by_fingerprint[root.fingerprint] = root
        self._by_subject.setdefault(root.subject, []).append(root)
        self._by_key.setdefault(root.public_key.fingerprint, []).append(root)

    def __contains__(self, cert: Certificate) -> bool:
        return cert.fingerprint in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self._by_fingerprint.values())

    def trusts_key(self, key_fingerprint: bytes) -> bool:
        """Is any root's public key this one?"""
        return key_fingerprint in self._by_key

    def roots_named(self, subject: Name) -> list[Certificate]:
        """Roots whose subject matches (issuer-name candidate lookup)."""
        return list(self._by_subject.get(subject, ()))

    def find_issuer(self, cert: Certificate) -> Optional[Certificate]:
        """A trusted root that actually signed ``cert``, if any."""
        for root in self._by_subject.get(cert.issuer, ()):
            if cert.verify_signature(root.public_key):
                return root
        return None
