"""The X.509 certificate data model.

:class:`Certificate` is the immutable record the entire library revolves
around: the scanner collects them, the validation pipeline classifies them,
and the linking methodology mines their fields.  Certificates DER-encode
to the real X.509 wire structure (``SEQUENCE { tbsCertificate,
signatureAlgorithm, signatureValue }``) and parse back exactly; identity is
the SHA-256 fingerprint over the DER bytes, just as scan datasets key
certificates in practice.

Validity bounds are simulated day indices (see :mod:`repro.simtime`).
Both of the paper's pathologies are representable: Not After before
Not Before (negative validity periods, 5.38 % of invalid certificates) and
Not After in the year 3000+ (validity periods beyond a million days).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..simtime import day_to_datetime, datetime_to_day
from .asn1 import (
    DERReader,
    Tag,
    encode_bit_string,
    encode_explicit,
    encode_integer,
    encode_null,
    encode_oid,
    encode_sequence,
)
from .extensions import Extensions
from .keys import PrivateKey, PublicKey
from .name import Name
from .oid import OID, RSA_ENCRYPTION, SIG_SHA256_RSA

__all__ = ["Certificate", "tbs_der"]


def _algorithm_identifier(algorithm: OID) -> bytes:
    return encode_sequence(encode_oid(algorithm), encode_null())


def _subject_public_key_info(key: PublicKey) -> bytes:
    rsa_key = encode_sequence(encode_integer(key.n), encode_integer(key.e))
    return encode_sequence(_algorithm_identifier(RSA_ENCRYPTION), encode_bit_string(rsa_key))


def _time_with_seconds(day: int, seconds: int):
    import datetime

    if not 0 <= seconds < 86400:
        raise ValueError(f"seconds-in-day out of range: {seconds}")
    return day_to_datetime(day) + datetime.timedelta(seconds=seconds)


def tbs_der(
    version: int,
    serial: int,
    issuer: Name,
    subject: Name,
    not_before: int,
    not_after: int,
    public_key: PublicKey,
    extensions: Extensions,
    not_before_secs: int = 0,
    not_after_secs: int = 0,
) -> bytes:
    """Encode the to-be-signed portion; this is what gets signed."""
    from .asn1 import encode_time

    members = []
    if version == 3:
        members.append(encode_explicit(0, encode_integer(2)))
    elif version != 1:
        # Broken firmware emits nonsense version numbers (the paper found
        # 89,667 certificates claiming versions 2, 4, even 13 — footnote 5
        # disregards them).  They must round-trip so the validation layer
        # can classify them; only version 1 omits the [0] tag.
        members.append(encode_explicit(0, encode_integer(version - 1)))
    members.append(encode_integer(serial))
    members.append(_algorithm_identifier(SIG_SHA256_RSA))
    members.append(issuer.to_der())
    members.append(
        encode_sequence(
            encode_time(_time_with_seconds(not_before, not_before_secs)),
            encode_time(_time_with_seconds(not_after, not_after_secs)),
        )
    )
    members.append(subject.to_der())
    members.append(_subject_public_key_info(public_key))
    if version != 1 and extensions:
        members.append(encode_explicit(3, extensions.to_der()))
    return encode_sequence(*members)


@dataclass(frozen=True)
class Certificate:
    """One parsed (or freshly built) X.509 certificate."""

    version: int
    serial: int
    issuer: Name
    subject: Name
    #: Validity bounds as day indices; day arithmetic drives all analyses.
    not_before: int
    not_after: int
    public_key: PublicKey
    extensions: Extensions
    signature: int
    #: Sub-day components of the validity timestamps (real X.509 times have
    #: second resolution; the Not Before linking analysis depends on it).
    not_before_secs: int = 0
    not_after_secs: int = 0

    # Cached encodings; excluded from equality/hash.
    _der_cache: dict = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    # --- encodings ----------------------------------------------------------

    def tbs_der(self) -> bytes:
        """The to-be-signed encoding (signature input)."""
        cached = self._der_cache.get("tbs")
        if cached is None:
            cached = tbs_der(
                self.version,
                self.serial,
                self.issuer,
                self.subject,
                self.not_before,
                self.not_after,
                self.public_key,
                self.extensions,
                self.not_before_secs,
                self.not_after_secs,
            )
            self._der_cache["tbs"] = cached
        return cached

    def to_der(self) -> bytes:
        """The full certificate encoding."""
        cached = self._der_cache.get("der")
        if cached is None:
            signature_bytes = self.signature.to_bytes(
                (self.signature.bit_length() + 7) // 8 or 1, "big"
            )
            cached = encode_sequence(
                self.tbs_der(),
                _algorithm_identifier(SIG_SHA256_RSA),
                encode_bit_string(signature_bytes),
            )
            self._der_cache["der"] = cached
        return cached

    @property
    def fingerprint(self) -> bytes:
        """SHA-256 over the DER encoding; the certificate's identity."""
        cached = self._der_cache.get("fp")
        if cached is None:
            cached = hashlib.sha256(self.to_der()).digest()
            self._der_cache["fp"] = cached
        return cached

    @property
    def fingerprint_hex(self) -> str:
        """Hex form of :attr:`fingerprint` for display and dict keys."""
        return self.fingerprint.hex()

    # --- semantic accessors ---------------------------------------------------

    @property
    def validity_period_days(self) -> int:
        """Not After − Not Before in days; negative for inverted validity."""
        return self.not_after - self.not_before

    @property
    def not_before_stamp(self) -> tuple[int, int]:
        """Full-resolution Not Before: (day, seconds-in-day)."""
        return (self.not_before, self.not_before_secs)

    @property
    def not_after_stamp(self) -> tuple[int, int]:
        """Full-resolution Not After: (day, seconds-in-day)."""
        return (self.not_after, self.not_after_secs)

    @property
    def subject_cn(self) -> Optional[str]:
        """The subject Common Name, or None."""
        return self.subject.cn

    @property
    def issuer_cn(self) -> Optional[str]:
        """The issuer Common Name, or None."""
        return self.issuer.cn

    @property
    def is_ca(self) -> bool:
        """True when basicConstraints marks this as a CA certificate.

        Version 1 certificates cannot distinguish leaf from CA — the reason
        the paper notes they are deprecated; we report False for them.
        """
        return self.version == 3 and self.extensions.is_ca

    def self_issued(self) -> bool:
        """True when subject and issuer names match (openssl's error-19 cue)."""
        return self.subject == self.issuer

    def verify_signature(self, signer_key: PublicKey) -> bool:
        """Check the signature against a candidate issuer public key."""
        return signer_key.verify(self.tbs_der(), self.signature)

    def is_self_signed(self) -> bool:
        """True when the certificate verifies under its *own* key.

        The paper's footnote 7 does exactly this second check because
        openssl reports error 19 only when subject and issuer match — a
        certificate can be self-signed with mismatched names.
        """
        return self.verify_signature(self.public_key)

    def valid_on(self, day: int) -> bool:
        """Is ``day`` inside the validity window?"""
        return self.not_before <= day <= self.not_after

    @classmethod
    def sign(
        cls,
        version: int,
        serial: int,
        issuer: Name,
        subject: Name,
        not_before: int,
        not_after: int,
        public_key: PublicKey,
        extensions: Extensions,
        signing_key: PrivateKey,
        not_before_secs: int = 0,
        not_after_secs: int = 0,
    ) -> "Certificate":
        """Build and sign a certificate with an issuer private key."""
        body = tbs_der(
            version, serial, issuer, subject, not_before, not_after,
            public_key, extensions, not_before_secs, not_after_secs,
        )
        return cls(
            version=version,
            serial=serial,
            issuer=issuer,
            subject=subject,
            not_before=not_before,
            not_after=not_after,
            public_key=public_key,
            extensions=extensions,
            signature=signing_key.sign(body),
            not_before_secs=not_before_secs,
            not_after_secs=not_after_secs,
        )

    # --- parsing ---------------------------------------------------------------

    @classmethod
    def from_der(cls, data: bytes) -> "Certificate":
        """Parse a DER-encoded certificate (inverse of :meth:`to_der`)."""
        outer = DERReader(data).enter_sequence()
        tbs = outer.enter_sequence()

        version = 1
        if not tbs.at_end() and tbs.peek_tag() == Tag.context(0):
            version_reader = tbs.enter_context(0)
            version = version_reader.read_integer() + 1
        serial = tbs.read_integer()
        _sig_alg = tbs.enter_sequence()  # noqa: F841 — single-algorithm PKI
        issuer = Name.from_der_reader(tbs)
        validity = tbs.enter_sequence()
        nb_time = validity.read_time()
        na_time = validity.read_time()
        not_before = datetime_to_day(nb_time)
        not_after = datetime_to_day(na_time)
        not_before_secs = nb_time.hour * 3600 + nb_time.minute * 60 + nb_time.second
        not_after_secs = na_time.hour * 3600 + na_time.minute * 60 + na_time.second
        subject = Name.from_der_reader(tbs)

        spki = tbs.enter_sequence()
        spki.enter_sequence()  # AlgorithmIdentifier (rsaEncryption)
        key_bits, _unused = spki.read_bit_string()
        key_reader = DERReader(key_bits).enter_sequence()
        public_key = PublicKey(key_reader.read_integer(), key_reader.read_integer())

        extensions = Extensions()
        if not tbs.at_end() and tbs.peek_tag() == Tag.context(3):
            ext_reader = tbs.enter_context(3)
            extensions = Extensions.from_der(ext_reader.rest())

        outer.enter_sequence()  # outer signatureAlgorithm
        signature_bytes, _unused = outer.read_bit_string()
        signature = int.from_bytes(signature_bytes, "big")

        return cls(
            version=version,
            serial=serial,
            issuer=issuer,
            subject=subject,
            not_before=not_before,
            not_after=not_after,
            public_key=public_key,
            extensions=extensions,
            signature=signature,
            not_before_secs=not_before_secs,
            not_after_secs=not_after_secs,
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"<Certificate v{self.version} subject={self.subject.rfc4514()!r} "
            f"issuer={self.issuer.rfc4514()!r} fp={self.fingerprint_hex[:12]}>"
        )
