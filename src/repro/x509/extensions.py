"""X.509 v3 extensions.

Implements the extensions the paper's linking methodology examines
(§6.3.1): Subject Alternative Name, Authority/Subject Key Identifier,
CRL Distribution Points, Authority Information Access (carrying both OCSP
responders and caIssuers locations), Certificate Policies (the "OID"
feature in Table 5/6), plus Basic Constraints and Key Usage which chain
validation needs.

Each typed extension knows how to encode its ``extnValue`` body and decode
itself back; :class:`Extensions` is the ordered collection stored on a
certificate, keeping unknown extensions as raw bytes so they round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from . import oid as oids
from .asn1 import (
    DERReader,
    Tag,
    encode_boolean,
    encode_octet_string,
    encode_oid,
    encode_sequence,
    encode_tlv,
)
from .oid import OID

__all__ = [
    "SubjectAltName",
    "AuthorityKeyIdentifier",
    "SubjectKeyIdentifier",
    "CRLDistributionPoints",
    "AuthorityInfoAccess",
    "CertificatePolicies",
    "BasicConstraints",
    "KeyUsage",
    "RawExtension",
    "Extensions",
]

_GENERAL_NAME_DNS = 2       # [2] IA5String
_GENERAL_NAME_URI = 6       # [6] IA5String
_GENERAL_NAME_IP = 7        # [7] OCTET STRING


@dataclass(frozen=True)
class SubjectAltName:
    """subjectAltName: a list of DNS names (we model IPs as strings too)."""

    names: tuple[str, ...]

    oid = oids.SUBJECT_ALT_NAME

    def encode_value(self) -> bytes:
        # Spec says IA5String (ASCII); real invalid certificates carry junk,
        # so we encode UTF-8 to keep every simulated name round-trippable.
        members = [
            encode_tlv(0x80 | _GENERAL_NAME_DNS, name.encode("utf-8"))
            for name in self.names
        ]
        return encode_sequence(*members)

    @classmethod
    def decode_value(cls, data: bytes) -> "SubjectAltName":
        reader = DERReader(data).enter_sequence()
        names = []
        for tlv in reader.iter_tlvs():
            names.append(tlv.value.decode("utf-8", errors="replace"))
        return cls(tuple(names))


@dataclass(frozen=True)
class AuthorityKeyIdentifier:
    """authorityKeyIdentifier: the issuer key's identifier bytes."""

    key_id: bytes

    oid = oids.AUTHORITY_KEY_ID

    def encode_value(self) -> bytes:
        # keyIdentifier [0] IMPLICIT OCTET STRING
        return encode_sequence(encode_tlv(0x80, self.key_id))

    @classmethod
    def decode_value(cls, data: bytes) -> "AuthorityKeyIdentifier":
        reader = DERReader(data).enter_sequence()
        tlv = reader.read_tlv()
        return cls(tlv.value)


@dataclass(frozen=True)
class SubjectKeyIdentifier:
    """subjectKeyIdentifier: this certificate's own key identifier."""

    key_id: bytes

    oid = oids.SUBJECT_KEY_ID

    def encode_value(self) -> bytes:
        return encode_octet_string(self.key_id)

    @classmethod
    def decode_value(cls, data: bytes) -> "SubjectKeyIdentifier":
        return cls(DERReader(data).read_octet_string())


@dataclass(frozen=True)
class CRLDistributionPoints:
    """cRLDistributionPoints: URIs where the CRL is published."""

    uris: tuple[str, ...]

    oid = oids.CRL_DISTRIBUTION_POINTS

    def encode_value(self) -> bytes:
        points = []
        for uri in self.uris:
            general_name = encode_tlv(
                0x80 | _GENERAL_NAME_URI, uri.encode("ascii", "replace")
            )
            # DistributionPoint ::= SEQUENCE { distributionPoint [0] { fullName [0] GeneralNames } }
            full_name = encode_tlv(0xA0, general_name)
            dp_name = encode_tlv(0xA0, full_name)
            points.append(encode_sequence(dp_name))
        return encode_sequence(*points)

    @classmethod
    def decode_value(cls, data: bytes) -> "CRLDistributionPoints":
        outer = DERReader(data).enter_sequence()
        uris = []
        for point in outer.iter_tlvs():
            dp_reader = DERReader(point.value)
            dp_name = dp_reader.read_tlv()
            full_name = DERReader(dp_name.value).read_tlv()
            for general_name in DERReader(full_name.value).iter_tlvs():
                uris.append(general_name.value.decode("ascii", errors="replace"))
        return cls(tuple(uris))


@dataclass(frozen=True)
class AuthorityInfoAccess:
    """authorityInfoAccess: OCSP responder and caIssuers URIs."""

    ocsp: tuple[str, ...] = ()
    ca_issuers: tuple[str, ...] = ()

    oid = oids.AUTHORITY_INFO_ACCESS

    def encode_value(self) -> bytes:
        descriptions = []
        for uri in self.ocsp:
            descriptions.append(_access_description(oids.AIA_OCSP, uri))
        for uri in self.ca_issuers:
            descriptions.append(_access_description(oids.AIA_CA_ISSUERS, uri))
        return encode_sequence(*descriptions)

    @classmethod
    def decode_value(cls, data: bytes) -> "AuthorityInfoAccess":
        reader = DERReader(data).enter_sequence()
        ocsp: list[str] = []
        ca_issuers: list[str] = []
        while not reader.at_end():
            description = reader.enter_sequence()
            method = description.read_oid()
            location = description.read_tlv().value.decode("ascii", errors="replace")
            if method == oids.AIA_OCSP:
                ocsp.append(location)
            elif method == oids.AIA_CA_ISSUERS:
                ca_issuers.append(location)
        return cls(tuple(ocsp), tuple(ca_issuers))


def _access_description(method: OID, uri: str) -> bytes:
    return encode_sequence(
        encode_oid(method),
        encode_tlv(0x80 | _GENERAL_NAME_URI, uri.encode("ascii", "replace")),
    )


@dataclass(frozen=True)
class CertificatePolicies:
    """certificatePolicies: the policy OIDs (Table 5/6's "OID" feature)."""

    policy_oids: tuple[OID, ...]

    oid = oids.CERTIFICATE_POLICIES

    def encode_value(self) -> bytes:
        return encode_sequence(
            *(encode_sequence(encode_oid(p)) for p in self.policy_oids)
        )

    @classmethod
    def decode_value(cls, data: bytes) -> "CertificatePolicies":
        reader = DERReader(data).enter_sequence()
        policies = []
        while not reader.at_end():
            info = reader.enter_sequence()
            policies.append(info.read_oid())
        return cls(tuple(policies))


@dataclass(frozen=True)
class BasicConstraints:
    """basicConstraints: the CA flag chain validation checks."""

    ca: bool

    oid = oids.BASIC_CONSTRAINTS

    def encode_value(self) -> bytes:
        return encode_sequence(encode_boolean(self.ca)) if self.ca else encode_sequence()

    @classmethod
    def decode_value(cls, data: bytes) -> "BasicConstraints":
        reader = DERReader(data).enter_sequence()
        if reader.at_end():
            return cls(ca=False)
        return cls(ca=reader.read_boolean())


@dataclass(frozen=True)
class KeyUsage:
    """keyUsage: the two bits validation cares about."""

    digital_signature: bool = False
    key_cert_sign: bool = False

    oid = oids.KEY_USAGE

    def encode_value(self) -> bytes:
        bits = 0
        if self.digital_signature:
            bits |= 0x80  # bit 0
        if self.key_cert_sign:
            bits |= 0x04  # bit 5
        from .asn1 import encode_bit_string

        return encode_bit_string(bytes([bits]), unused_bits=2)

    @classmethod
    def decode_value(cls, data: bytes) -> "KeyUsage":
        body, _unused = DERReader(data).read_bit_string()
        bits = body[0] if body else 0
        return cls(
            digital_signature=bool(bits & 0x80),
            key_cert_sign=bool(bits & 0x04),
        )


@dataclass(frozen=True)
class RawExtension:
    """An extension this library does not model; kept byte-exact."""

    raw_oid: OID
    value: bytes

    @property
    def oid(self) -> OID:
        return self.raw_oid

    def encode_value(self) -> bytes:
        return self.value


TypedExtension = Union[
    SubjectAltName,
    AuthorityKeyIdentifier,
    SubjectKeyIdentifier,
    CRLDistributionPoints,
    AuthorityInfoAccess,
    CertificatePolicies,
    BasicConstraints,
    KeyUsage,
    RawExtension,
]

_DECODERS = {
    oids.SUBJECT_ALT_NAME: SubjectAltName.decode_value,
    oids.AUTHORITY_KEY_ID: AuthorityKeyIdentifier.decode_value,
    oids.SUBJECT_KEY_ID: SubjectKeyIdentifier.decode_value,
    oids.CRL_DISTRIBUTION_POINTS: CRLDistributionPoints.decode_value,
    oids.AUTHORITY_INFO_ACCESS: AuthorityInfoAccess.decode_value,
    oids.CERTIFICATE_POLICIES: CertificatePolicies.decode_value,
    oids.BASIC_CONSTRAINTS: BasicConstraints.decode_value,
    oids.KEY_USAGE: KeyUsage.decode_value,
}


@dataclass(frozen=True)
class Extensions:
    """The ordered extension list of one certificate."""

    items: tuple[TypedExtension, ...] = ()

    def __iter__(self) -> Iterator[TypedExtension]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def get(self, ext_type: type) -> Optional[TypedExtension]:
        """First extension of the given typed class, or None."""
        for item in self.items:
            if isinstance(item, ext_type):
                return item
        return None

    @property
    def subject_alt_names(self) -> tuple[str, ...]:
        ext = self.get(SubjectAltName)
        return ext.names if ext else ()

    @property
    def authority_key_id(self) -> Optional[bytes]:
        ext = self.get(AuthorityKeyIdentifier)
        return ext.key_id if ext else None

    @property
    def subject_key_id(self) -> Optional[bytes]:
        ext = self.get(SubjectKeyIdentifier)
        return ext.key_id if ext else None

    @property
    def crl_uris(self) -> tuple[str, ...]:
        ext = self.get(CRLDistributionPoints)
        return ext.uris if ext else ()

    @property
    def aia(self) -> Optional[AuthorityInfoAccess]:
        return self.get(AuthorityInfoAccess)

    @property
    def ocsp_uris(self) -> tuple[str, ...]:
        ext = self.aia
        return ext.ocsp if ext else ()

    @property
    def ca_issuer_uris(self) -> tuple[str, ...]:
        ext = self.aia
        return ext.ca_issuers if ext else ()

    @property
    def policy_oids(self) -> tuple[OID, ...]:
        ext = self.get(CertificatePolicies)
        return ext.policy_oids if ext else ()

    @property
    def is_ca(self) -> bool:
        ext = self.get(BasicConstraints)
        return bool(ext and ext.ca)

    def to_der(self) -> bytes:
        """Encode as the SEQUENCE OF Extension inside the [3] wrapper."""
        members = []
        for item in self.items:
            members.append(
                encode_sequence(
                    encode_oid(item.oid),
                    encode_octet_string(item.encode_value()),
                )
            )
        return encode_sequence(*members)

    @classmethod
    def from_der(cls, data: bytes) -> "Extensions":
        """Decode the SEQUENCE OF Extension body."""
        reader = DERReader(data).enter_sequence()
        items: list[TypedExtension] = []
        while not reader.at_end():
            ext = reader.enter_sequence()
            ext_oid = ext.read_oid()
            if ext.peek_tag() == Tag.BOOLEAN:  # optional critical flag
                ext.read_boolean()
            value = ext.read_octet_string()
            decoder = _DECODERS.get(ext_oid)
            if decoder is None:
                items.append(RawExtension(ext_oid, value))
            else:
                items.append(decoder(value))
        return cls(tuple(items))

    @classmethod
    def of(cls, *items: TypedExtension) -> "Extensions":
        """Convenience constructor."""
        return cls(tuple(items))
