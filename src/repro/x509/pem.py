"""PEM armor for certificates.

Standard RFC 7468 encoding so certificates produced by this library can be
fed to external tools (``openssl x509 -in cert.pem -text``) and
certificates from PEM sources can enter the pipeline.
"""

from __future__ import annotations

import base64
import textwrap

from .certificate import Certificate

__all__ = ["encode_pem", "decode_pem", "decode_pem_many"]

_HEADER = "-----BEGIN CERTIFICATE-----"
_FOOTER = "-----END CERTIFICATE-----"


def encode_pem(cert: Certificate) -> str:
    """Encode one certificate as a PEM block (64-column base64)."""
    body = base64.b64encode(cert.to_der()).decode("ascii")
    wrapped = "\n".join(textwrap.wrap(body, 64))
    return f"{_HEADER}\n{wrapped}\n{_FOOTER}\n"


def decode_pem(text: str) -> Certificate:
    """Decode the first PEM certificate block in ``text``."""
    certificates = decode_pem_many(text)
    if not certificates:
        raise ValueError("no CERTIFICATE block found")
    return certificates[0]


def decode_pem_many(text: str) -> list[Certificate]:
    """Decode every PEM certificate block in ``text`` (e.g. a CA bundle)."""
    certificates = []
    lines = text.splitlines()
    collecting = False
    chunk: list[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped == _HEADER:
            collecting = True
            chunk = []
        elif stripped == _FOOTER:
            if not collecting:
                raise ValueError("END without BEGIN")
            der = base64.b64decode("".join(chunk), validate=True)
            certificates.append(Certificate.from_der(der))
            collecting = False
        elif collecting:
            chunk.append(stripped)
    if collecting:
        raise ValueError("unterminated CERTIFICATE block")
    return certificates
