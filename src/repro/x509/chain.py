"""Certificate-chain construction and verification.

This is the library's ``openssl verify`` equivalent (paper §4.2):

* expiry is deliberately **ignored** — a certificate counts as valid if it
  would verify at *some* point in time, because the scans and the
  validation run happened at different times;
* chains are built from the full pool of CA certificates observed across
  *all* scans, not just what a server presented, so "transvalid"
  certificates (correct certificate, wrong served chain) still validate;
* self-signedness is detected the way the paper's footnote 7 describes:
  openssl's error 19 fires only when subject and issuer names match, so a
  second check verifies the signature under the certificate's own key.

The verdict taxonomy mirrors the paper's §4.2 percentages: 88.0 % of
invalid certificates are self-signed, 11.99 % are signed by another
untrusted certificate, and 0.01 % fail for other reasons (signature
errors, parse errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .certificate import Certificate
from .truststore import TrustStore

__all__ = ["VerifyStatus", "VerifyResult", "ChainVerifier"]

_MAX_CHAIN_DEPTH = 8


class VerifyStatus(enum.Enum):
    """Outcome classes of chain verification."""

    VALID = "valid"
    #: Chain root is the leaf itself (openssl error 19 and footnote-7 cases).
    SELF_SIGNED = "self-signed"
    #: Chain terminates at a certificate that is not in the trust store.
    UNTRUSTED_ISSUER = "untrusted-issuer"
    #: An issuer candidate exists but the signature does not verify.
    BAD_SIGNATURE = "bad-signature"
    #: Structurally unusable (e.g. unsupported version).
    MALFORMED = "malformed"

    @property
    def is_valid(self) -> bool:
        return self is VerifyStatus.VALID


@dataclass(frozen=True)
class VerifyResult:
    """Verdict for one certificate."""

    status: VerifyStatus
    #: The trust chain leaf→root when status is VALID.
    chain: tuple[Certificate, ...] = ()
    detail: str = ""

    @property
    def is_valid(self) -> bool:
        return self.status.is_valid


class ChainVerifier:
    """Builds and verifies chains against a trust store.

    ``intermediate_pool`` should contain every CA certificate observed in
    the dataset (the paper pre-validates all intermediates before leaves,
    enabling transvalid chains).
    """

    def __init__(
        self,
        trust_store: TrustStore,
        intermediate_pool: Iterable[Certificate] = (),
    ) -> None:
        self._store = trust_store
        self._intermediates_by_subject: dict = {}
        for cert in intermediate_pool:
            self.add_intermediate(cert)

    def add_intermediate(self, cert: Certificate) -> None:
        """Add a candidate intermediate; non-CA certificates are ignored."""
        if not cert.is_ca:
            return
        self._intermediates_by_subject.setdefault(cert.subject, []).append(cert)

    def verify(self, cert: Certificate) -> VerifyResult:
        """Classify one certificate.  Expiry is never checked."""
        if cert.version not in (1, 3):
            return VerifyResult(
                VerifyStatus.MALFORMED, detail=f"unsupported version {cert.version}"
            )

        # A leaf that *is* a trusted root is trivially valid.
        if cert in self._store:
            return VerifyResult(VerifyStatus.VALID, chain=(cert,))

        chain = self._build_chain(cert)
        if chain is not None:
            return VerifyResult(VerifyStatus.VALID, chain=tuple(chain))

        # Not validatable: classify the failure the way §4.2 does.
        if cert.is_self_signed():
            detail = (
                "self-signed (subject==issuer)"
                if cert.self_issued()
                else "self-signed (verified under own key, names differ)"
            )
            return VerifyResult(VerifyStatus.SELF_SIGNED, detail=detail)

        issuer_candidates = self._issuer_candidates(cert)
        if issuer_candidates and not any(
            cert.verify_signature(candidate.public_key)
            for candidate in issuer_candidates
        ):
            return VerifyResult(
                VerifyStatus.BAD_SIGNATURE,
                detail="issuer name matched but no candidate key verifies",
            )
        return VerifyResult(
            VerifyStatus.UNTRUSTED_ISSUER,
            detail="no path to a trusted root",
        )

    # --- chain building ---------------------------------------------------------

    def _issuer_candidates(self, cert: Certificate) -> list[Certificate]:
        candidates = list(self._store.roots_named(cert.issuer))
        candidates.extend(self._intermediates_by_subject.get(cert.issuer, ()))
        return candidates

    def _build_chain(
        self, cert: Certificate, depth: int = 0, seen: Optional[set] = None
    ) -> Optional[list[Certificate]]:
        """Depth-first search for a leaf→root path; None if none exists."""
        if depth > _MAX_CHAIN_DEPTH:
            return None
        if seen is None:
            seen = set()
        if cert.fingerprint in seen:
            return None
        seen = seen | {cert.fingerprint}

        # Terminate at a trusted root signature.
        trusted_issuer = self._store.find_issuer(cert)
        if trusted_issuer is not None:
            return [cert, trusted_issuer]

        for candidate in self._intermediates_by_subject.get(cert.issuer, ()):
            if candidate.fingerprint == cert.fingerprint:
                continue
            if not cert.verify_signature(candidate.public_key):
                continue
            upper = self._build_chain(candidate, depth + 1, seen)
            if upper is not None:
                return [cert, *upper]
        return None

    def verify_all(
        self, certs: Sequence[Certificate]
    ) -> dict[bytes, VerifyResult]:
        """Verify a batch, keyed by certificate fingerprint."""
        return {cert.fingerprint: self.verify(cert) for cert in certs}
