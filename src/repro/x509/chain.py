"""Certificate-chain construction and verification.

This is the library's ``openssl verify`` equivalent (paper §4.2):

* expiry is deliberately **ignored** — a certificate counts as valid if it
  would verify at *some* point in time, because the scans and the
  validation run happened at different times;
* chains are built from the full pool of CA certificates observed across
  *all* scans, not just what a server presented, so "transvalid"
  certificates (correct certificate, wrong served chain) still validate;
* self-signedness is detected the way the paper's footnote 7 describes:
  openssl's error 19 fires only when subject and issuer names match, so a
  second check verifies the signature under the certificate's own key.

The verdict taxonomy mirrors the paper's §4.2 percentages: 88.0 % of
invalid certificates are self-signed, 11.99 % are signed by another
untrusted certificate, and 0.01 % fail for other reasons (signature
errors, parse errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

from .certificate import Certificate
from .truststore import TrustStore

__all__ = ["VerifyStatus", "VerifyResult", "ChainVerifier"]

_MAX_CHAIN_DEPTH = 8

#: Memo sentinel distinct from a legitimately memoized ``None`` (no chain).
_MEMO_MISSING = object()


class VerifyStatus(enum.Enum):
    """Outcome classes of chain verification."""

    VALID = "valid"
    #: Chain root is the leaf itself (openssl error 19 and footnote-7 cases).
    SELF_SIGNED = "self-signed"
    #: Chain terminates at a certificate that is not in the trust store.
    UNTRUSTED_ISSUER = "untrusted-issuer"
    #: An issuer candidate exists but the signature does not verify.
    BAD_SIGNATURE = "bad-signature"
    #: Structurally unusable (e.g. unsupported version).
    MALFORMED = "malformed"

    @property
    def is_valid(self) -> bool:
        return self is VerifyStatus.VALID


@dataclass(frozen=True)
class VerifyResult:
    """Verdict for one certificate."""

    status: VerifyStatus
    #: The trust chain leaf→root when status is VALID.
    chain: tuple[Certificate, ...] = ()
    detail: str = ""

    @property
    def is_valid(self) -> bool:
        return self.status.is_valid


class ChainVerifier:
    """Builds and verifies chains against a trust store.

    ``intermediate_pool`` should contain every CA certificate observed in
    the dataset (the paper pre-validates all intermediates before leaves,
    enabling transvalid chains).
    """

    def __init__(
        self,
        trust_store: TrustStore,
        intermediate_pool: Iterable[Certificate] = (),
        memoize: bool = True,
    ) -> None:
        self._store = trust_store
        self._intermediates_by_subject: dict = {}
        self._memoize = memoize
        #: CA fingerprint → its canonical upper chain (None = provably no
        #: chain from any starting path).  See :meth:`_ca_chain`.
        self._chain_memo: dict[bytes, Optional[list[Certificate]]] = {}
        for cert in intermediate_pool:
            self.add_intermediate(cert)

    def add_intermediate(self, cert: Certificate) -> None:
        """Add a candidate intermediate; non-CA certificates are ignored."""
        if not cert.is_ca:
            return
        if self._chain_memo:
            # A new intermediate can both create chains and change which
            # chain the DFS finds first; all memoized answers are stale.
            self._chain_memo.clear()
        self._intermediates_by_subject.setdefault(cert.subject, []).append(cert)

    def verify(self, cert: Certificate) -> VerifyResult:
        """Classify one certificate.  Expiry is never checked."""
        if cert.version not in (1, 3):
            return VerifyResult(
                VerifyStatus.MALFORMED, detail=f"unsupported version {cert.version}"
            )

        # A leaf that *is* a trusted root is trivially valid.
        if cert in self._store:
            return VerifyResult(VerifyStatus.VALID, chain=(cert,))

        chain = self._find_chain(cert)
        if chain is not None:
            return VerifyResult(VerifyStatus.VALID, chain=tuple(chain))

        # Not validatable: classify the failure the way §4.2 does.
        if cert.is_self_signed():
            detail = (
                "self-signed (subject==issuer)"
                if cert.self_issued()
                else "self-signed (verified under own key, names differ)"
            )
            return VerifyResult(VerifyStatus.SELF_SIGNED, detail=detail)

        issuer_candidates = self._issuer_candidates(cert)
        if issuer_candidates and not any(
            cert.verify_signature(candidate.public_key)
            for candidate in issuer_candidates
        ):
            return VerifyResult(
                VerifyStatus.BAD_SIGNATURE,
                detail="issuer name matched but no candidate key verifies",
            )
        return VerifyResult(
            VerifyStatus.UNTRUSTED_ISSUER,
            detail="no path to a trusted root",
        )

    # --- chain building ---------------------------------------------------------

    def _issuer_candidates(self, cert: Certificate) -> list[Certificate]:
        candidates = list(self._store.roots_named(cert.issuer))
        candidates.extend(self._intermediates_by_subject.get(cert.issuer, ()))
        return candidates

    def _build_chain(
        self, cert: Certificate, depth: int = 0, seen: Optional[set] = None
    ) -> Optional[list[Certificate]]:
        """Depth-first search for a leaf→root path; None if none exists."""
        if depth > _MAX_CHAIN_DEPTH:
            return None
        if seen is None:
            seen = set()
        if cert.fingerprint in seen:
            return None
        seen = seen | {cert.fingerprint}

        # Terminate at a trusted root signature.
        trusted_issuer = self._store.find_issuer(cert)
        if trusted_issuer is not None:
            return [cert, trusted_issuer]

        for candidate in self._intermediates_by_subject.get(cert.issuer, ()):
            if candidate.fingerprint == cert.fingerprint:
                continue
            if not cert.verify_signature(candidate.public_key):
                continue
            upper = self._build_chain(candidate, depth + 1, seen)
            if upper is not None:
                return [cert, *upper]
        return None

    # --- memoized chain building -------------------------------------------------

    def _find_chain(self, cert: Certificate) -> Optional[list[Certificate]]:
        """:meth:`_build_chain`, answered from the per-CA chain memo.

        §4.2 validates every leaf against the same CA pool, so the upper
        (CA → root) portion of every chain is shared across leaves; the
        memo computes it once per CA.  Memoized answers are used only
        when provably independent of the current search path and depth
        budget — any path-entangled answer falls back to the exact naive
        DFS — so the result is identical to :meth:`_build_chain` in every
        case (the ``REPRO_LINK_PARITY`` twin re-verifies with
        ``memoize=False`` and asserts equality).
        """
        if not self._memoize:
            return self._build_chain(cert)
        trusted_issuer = self._store.find_issuer(cert)
        if trusted_issuer is not None:
            return [cert, trusted_issuer]
        fingerprint = cert.fingerprint
        for candidate in self._intermediates_by_subject.get(cert.issuer, ()):
            if candidate.fingerprint == fingerprint:
                continue
            if not cert.verify_signature(candidate.public_key):
                continue
            upper, clean = self._ca_chain(candidate, frozenset((fingerprint,)))
            if upper is not None:
                return [cert, *upper]
            if not clean:
                return self._build_chain(cert)
        return None

    def _ca_chain(
        self, ca: Certificate, path: FrozenSet[bytes]
    ) -> tuple[Optional[list[Certificate]], bool]:
        """The chain from one CA upward, memoized; returns ``(chain, clean)``.

        ``path`` holds the fingerprints already on the search path below
        ``ca`` (``len(path)`` equals the naive DFS depth of ``ca``).  A
        ``clean`` failure means the answer holds for *any* path and
        depth — only those are memoized or allowed to let the search
        continue; a dirty failure (cycle hit, depth budget, or a memo
        whose chain conflicts with this path) makes the caller fall back
        to the exact DFS rather than guess.  The last chain element is a
        trusted root and is exempt from path checks, exactly as the
        naive DFS never checks its terminating root against ``seen``.
        """
        fingerprint = ca.fingerprint
        budget = _MAX_CHAIN_DEPTH + 2 - len(path)
        memo = self._chain_memo.get(fingerprint, _MEMO_MISSING)
        if memo is not _MEMO_MISSING:
            if memo is None:
                return None, True
            if len(memo) <= budget and all(
                link.fingerprint not in path for link in memo[:-1]
            ):
                return memo, True
            return None, False
        if fingerprint in path or len(path) > _MAX_CHAIN_DEPTH:
            return None, False
        trusted_issuer = self._store.find_issuer(ca)
        if trusted_issuer is not None:
            chain = [ca, trusted_issuer]
            self._chain_memo[fingerprint] = chain
            return chain, True
        sub_path = path | {fingerprint}
        for candidate in self._intermediates_by_subject.get(ca.issuer, ()):
            if candidate.fingerprint == fingerprint:
                continue
            if not ca.verify_signature(candidate.public_key):
                continue
            upper, clean = self._ca_chain(candidate, sub_path)
            if upper is not None:
                chain = [ca, *upper]
                self._chain_memo[fingerprint] = chain
                return chain, True
            if not clean:
                return None, False
        self._chain_memo[fingerprint] = None
        return None, True

    def verify_all(
        self, certs: Sequence[Certificate]
    ) -> dict[bytes, VerifyResult]:
        """Verify a batch, keyed by certificate fingerprint."""
        return {cert.fingerprint: self.verify(cert) for cert in certs}
