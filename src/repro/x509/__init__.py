"""From-scratch X.509 substrate: DER, RSA, certificates, chains, trust."""

from .builder import CertificateBuilder
from .certificate import Certificate
from .chain import ChainVerifier, VerifyResult, VerifyStatus
from .extensions import (
    AuthorityInfoAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CRLDistributionPoints,
    CertificatePolicies,
    Extensions,
    KeyUsage,
    RawExtension,
    SubjectAltName,
    SubjectKeyIdentifier,
)
from .keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from .name import Name
from .oid import OID, RSA_ENCRYPTION, SIG_SHA256_RSA
from .truststore import TrustStore

__all__ = [
    "CertificateBuilder",
    "Certificate",
    "ChainVerifier",
    "VerifyResult",
    "VerifyStatus",
    "AuthorityInfoAccess",
    "AuthorityKeyIdentifier",
    "BasicConstraints",
    "CRLDistributionPoints",
    "CertificatePolicies",
    "Extensions",
    "KeyUsage",
    "RawExtension",
    "SubjectAltName",
    "SubjectKeyIdentifier",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "Name",
    "OID",
    "RSA_ENCRYPTION",
    "SIG_SHA256_RSA",
    "TrustStore",
]
