"""Minimal DER (Distinguished Encoding Rules) codec.

Implements exactly the subset of ASN.1/DER that X.509 certificates need:
BOOLEAN, INTEGER, BIT STRING, OCTET STRING, NULL, OBJECT IDENTIFIER,
UTF8String / PrintableString / IA5String, UTCTime / GeneralizedTime,
SEQUENCE, SET, and context-specific constructed tags.

The encoder works from plain Python values via the ``encode_*`` functions;
the decoder is a pull-parser (:class:`DERReader`) that the certificate layer
drives.  Round-tripping is exact: ``decode(encode(x)) == x`` for every
supported shape, and the test suite checks this property with hypothesis.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator, Sequence

from .oid import OID

__all__ = [
    "DERError",
    "Tag",
    "TLV",
    "DERReader",
    "encode_boolean",
    "encode_integer",
    "encode_bit_string",
    "encode_octet_string",
    "encode_null",
    "encode_oid",
    "encode_utf8_string",
    "encode_printable_string",
    "encode_ia5_string",
    "encode_time",
    "encode_sequence",
    "encode_set",
    "encode_explicit",
    "encode_implicit",
]


class DERError(ValueError):
    """Raised on malformed DER input."""


class Tag:
    """Universal tag numbers used by X.509."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OID = 0x06
    UTF8_STRING = 0x0C
    PRINTABLE_STRING = 0x13
    IA5_STRING = 0x16
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    SEQUENCE = 0x30  # constructed bit set
    SET = 0x31       # constructed bit set

    @staticmethod
    def context(number: int, constructed: bool = True) -> int:
        """Context-specific tag byte (class 10, e.g. [0] → 0xA0)."""
        if not 0 <= number <= 30:
            raise ValueError(f"context tag number out of range: {number}")
        return 0x80 | (0x20 if constructed else 0) | number


@dataclass(frozen=True)
class TLV:
    """One decoded tag-length-value triple."""

    tag: int
    value: bytes

    @property
    def constructed(self) -> bool:
        return bool(self.tag & 0x20)

    @property
    def is_context(self) -> bool:
        return (self.tag & 0xC0) == 0x80

    @property
    def context_number(self) -> int:
        if not self.is_context:
            raise DERError(f"tag 0x{self.tag:02x} is not context-specific")
        return self.tag & 0x1F


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes([length])
    octets = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(octets)]) + octets


def encode_tlv(tag: int, value: bytes) -> bytes:
    """Encode a raw tag-length-value triple."""
    return bytes([tag]) + _encode_length(len(value)) + value


def encode_boolean(value: bool) -> bytes:
    """DER BOOLEAN (0xFF for True per DER)."""
    return encode_tlv(Tag.BOOLEAN, b"\xff" if value else b"\x00")


def encode_integer(value: int) -> bytes:
    """DER INTEGER, two's-complement, minimal length."""
    if value == 0:
        return encode_tlv(Tag.INTEGER, b"\x00")
    length = (value.bit_length() + 8) // 8  # +1 bit for the sign
    body = value.to_bytes(length, "big", signed=True)
    # Strip redundant leading bytes while preserving the sign bit.
    while (
        len(body) > 1
        and (
            (body[0] == 0x00 and not body[1] & 0x80)
            or (body[0] == 0xFF and body[1] & 0x80)
        )
    ):
        body = body[1:]
    return encode_tlv(Tag.INTEGER, body)


def encode_bit_string(data: bytes, unused_bits: int = 0) -> bytes:
    """DER BIT STRING with an explicit unused-bit count."""
    if not 0 <= unused_bits <= 7:
        raise ValueError(f"unused bits out of range: {unused_bits}")
    return encode_tlv(Tag.BIT_STRING, bytes([unused_bits]) + data)


def encode_octet_string(data: bytes) -> bytes:
    """DER OCTET STRING."""
    return encode_tlv(Tag.OCTET_STRING, data)


def encode_null() -> bytes:
    """DER NULL."""
    return encode_tlv(Tag.NULL, b"")


def encode_oid(oid: OID) -> bytes:
    """DER OBJECT IDENTIFIER with base-128 arc packing."""
    arcs = oid.arcs
    body = bytearray(_encode_base128(arcs[0] * 40 + arcs[1]))
    for arc in arcs[2:]:
        body.extend(_encode_base128(arc))
    return encode_tlv(Tag.OID, bytes(body))


def _encode_base128(value: int) -> bytes:
    if value == 0:
        return b"\x00"
    out = bytearray()
    while value:
        out.append(value & 0x7F)
        value >>= 7
    out.reverse()
    for i in range(len(out) - 1):
        out[i] |= 0x80
    return bytes(out)


def encode_utf8_string(text: str) -> bytes:
    """DER UTF8String."""
    return encode_tlv(Tag.UTF8_STRING, text.encode("utf-8"))


def encode_printable_string(text: str) -> bytes:
    """DER PrintableString (no character-set enforcement; the simulated
    devices routinely emit values real DER would reject, and the paper's
    pipeline must parse them anyway)."""
    return encode_tlv(Tag.PRINTABLE_STRING, text.encode("ascii"))


def encode_ia5_string(text: str) -> bytes:
    """DER IA5String (ASCII)."""
    return encode_tlv(Tag.IA5_STRING, text.encode("ascii"))


def encode_time(when: datetime.datetime) -> bytes:
    """DER time: UTCTime for 1950–2049, GeneralizedTime otherwise.

    This is the X.509 rule; the paper's invalid certificates with Not After
    in the year 3000+ therefore serialize as GeneralizedTime.
    """
    if when.tzinfo is not None:
        raise ValueError("encode_time expects naive UTC datetimes")
    stamp = (
        f"{when.month:02d}{when.day:02d}"
        f"{when.hour:02d}{when.minute:02d}{when.second:02d}Z"
    )
    if 1950 <= when.year <= 2049:
        text = f"{when.year % 100:02d}{stamp}"
        return encode_tlv(Tag.UTC_TIME, text.encode("ascii"))
    text = f"{when.year:04d}{stamp}"
    return encode_tlv(Tag.GENERALIZED_TIME, text.encode("ascii"))


def encode_sequence(*members: bytes) -> bytes:
    """DER SEQUENCE of already-encoded members."""
    return encode_tlv(Tag.SEQUENCE, b"".join(members))


def encode_set(members: Sequence[bytes]) -> bytes:
    """DER SET OF: members are sorted by encoding, as DER requires."""
    return encode_tlv(Tag.SET, b"".join(sorted(members)))


def encode_explicit(number: int, inner: bytes) -> bytes:
    """EXPLICIT context tag: wraps the complete inner encoding."""
    return encode_tlv(Tag.context(number, constructed=True), inner)


def encode_implicit(number: int, inner: bytes, constructed: bool = False) -> bytes:
    """IMPLICIT context tag: replaces the inner tag byte."""
    if not inner:
        raise ValueError("cannot implicitly retag empty encoding")
    reader = DERReader(inner)
    tlv = reader.read_tlv()
    if not reader.at_end():
        raise ValueError("implicit retag expects a single TLV")
    return encode_tlv(Tag.context(number, constructed=constructed), tlv.value)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

class DERReader:
    """Sequential pull-parser over a DER byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def at_end(self) -> bool:
        """True when all bytes have been consumed."""
        return self._pos >= len(self._data)

    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._pos

    def rest(self) -> bytes:
        """Return (without consuming) all bytes not yet read."""
        return self._data[self._pos:]

    def peek_tag(self) -> int:
        """Tag byte of the next TLV without consuming it."""
        if self.at_end():
            raise DERError("unexpected end of DER data")
        return self._data[self._pos]

    def read_tlv(self) -> TLV:
        """Consume and return the next TLV."""
        tag = self.peek_tag()
        self._pos += 1
        length = self._read_length()
        end = self._pos + length
        if end > len(self._data):
            raise DERError("TLV length overruns buffer")
        value = self._data[self._pos:end]
        self._pos = end
        return TLV(tag, value)

    def _read_length(self) -> int:
        if self.at_end():
            raise DERError("truncated length")
        first = self._data[self._pos]
        self._pos += 1
        if first < 0x80:
            return first
        count = first & 0x7F
        if count == 0:
            raise DERError("indefinite lengths are not DER")
        if self._pos + count > len(self._data):
            raise DERError("truncated long-form length")
        value = int.from_bytes(self._data[self._pos:self._pos + count], "big")
        self._pos += count
        return value

    def expect(self, tag: int) -> TLV:
        """Consume the next TLV and require a specific tag."""
        tlv = self.read_tlv()
        if tlv.tag != tag:
            raise DERError(f"expected tag 0x{tag:02x}, got 0x{tlv.tag:02x}")
        return tlv

    # --- typed readers ------------------------------------------------------

    def read_boolean(self) -> bool:
        tlv = self.expect(Tag.BOOLEAN)
        if len(tlv.value) != 1:
            raise DERError("BOOLEAN must be one byte")
        return tlv.value != b"\x00"

    def read_integer(self) -> int:
        tlv = self.expect(Tag.INTEGER)
        if not tlv.value:
            raise DERError("empty INTEGER")
        return int.from_bytes(tlv.value, "big", signed=True)

    def read_bit_string(self) -> tuple[bytes, int]:
        tlv = self.expect(Tag.BIT_STRING)
        if not tlv.value:
            raise DERError("empty BIT STRING")
        unused = tlv.value[0]
        if unused > 7:
            raise DERError(f"invalid unused-bit count {unused}")
        return tlv.value[1:], unused

    def read_octet_string(self) -> bytes:
        return self.expect(Tag.OCTET_STRING).value

    def read_null(self) -> None:
        tlv = self.expect(Tag.NULL)
        if tlv.value:
            raise DERError("NULL with content")

    def read_oid(self) -> OID:
        tlv = self.expect(Tag.OID)
        return decode_oid_body(tlv.value)

    def read_string(self) -> str:
        """Read any of the supported string types."""
        tlv = self.read_tlv()
        if tlv.tag == Tag.UTF8_STRING:
            return tlv.value.decode("utf-8")
        if tlv.tag in (Tag.PRINTABLE_STRING, Tag.IA5_STRING):
            return tlv.value.decode("ascii", errors="replace")
        raise DERError(f"tag 0x{tlv.tag:02x} is not a string type")

    def read_time(self) -> datetime.datetime:
        tlv = self.read_tlv()
        text = tlv.value.decode("ascii", errors="replace")
        if tlv.tag == Tag.UTC_TIME:
            return _parse_utc_time(text)
        if tlv.tag == Tag.GENERALIZED_TIME:
            return _parse_generalized_time(text)
        raise DERError(f"tag 0x{tlv.tag:02x} is not a time type")

    def enter_sequence(self) -> "DERReader":
        """Consume a SEQUENCE and return a reader over its contents."""
        return DERReader(self.expect(Tag.SEQUENCE).value)

    def enter_set(self) -> "DERReader":
        """Consume a SET and return a reader over its contents."""
        return DERReader(self.expect(Tag.SET).value)

    def enter_context(self, number: int) -> "DERReader":
        """Consume an EXPLICIT [number] tag and return its content reader."""
        tlv = self.read_tlv()
        if not tlv.is_context or tlv.context_number != number:
            raise DERError(f"expected context tag [{number}], got 0x{tlv.tag:02x}")
        return DERReader(tlv.value)

    def iter_tlvs(self) -> Iterator[TLV]:
        """Yield every remaining TLV at this nesting level."""
        while not self.at_end():
            yield self.read_tlv()


def decode_oid_body(body: bytes) -> OID:
    """Decode the content octets of an OBJECT IDENTIFIER."""
    if not body:
        raise DERError("empty OID")
    subidentifiers: list[int] = []
    value = 0
    pending = False
    for byte in body:
        value = (value << 7) | (byte & 0x7F)
        pending = True
        if not byte & 0x80:
            subidentifiers.append(value)
            value = 0
            pending = False
    if pending:
        raise DERError("truncated OID arc")
    first = subidentifiers[0]
    if first >= 80:
        arcs = [2, first - 80]
    else:
        arcs = [first // 40, first % 40]
    arcs.extend(subidentifiers[1:])
    return OID(tuple(arcs))


def _parse_utc_time(text: str) -> datetime.datetime:
    if not text.endswith("Z") or len(text) != 13:
        raise DERError(f"malformed UTCTime {text!r}")
    two_digit_year = int(text[:2])
    year = 2000 + two_digit_year if two_digit_year < 50 else 1900 + two_digit_year
    return _build_datetime(year, text[2:12], text)


def _parse_generalized_time(text: str) -> datetime.datetime:
    if not text.endswith("Z") or len(text) != 15:
        raise DERError(f"malformed GeneralizedTime {text!r}")
    return _build_datetime(int(text[:4]), text[4:14], text)


def _build_datetime(year: int, rest: str, original: str) -> datetime.datetime:
    try:
        return datetime.datetime(
            year,
            int(rest[0:2]),
            int(rest[2:4]),
            int(rest[4:6]),
            int(rest[6:8]),
            int(rest[8:10]),
        )
    except ValueError:
        raise DERError(f"invalid time {original!r}") from None
