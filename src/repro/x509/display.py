"""Human-readable certificate rendering.

``openssl x509 -noout -text``-style output for debugging, examples, and
incident write-ups.  Purely presentational — nothing in the pipeline
parses this text.
"""

from __future__ import annotations

from ..simtime import MAX_DAY, MIN_DAY, format_day
from .certificate import Certificate
from .extensions import (
    AuthorityInfoAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CRLDistributionPoints,
    CertificatePolicies,
    KeyUsage,
    RawExtension,
    SubjectAltName,
    SubjectKeyIdentifier,
)

__all__ = ["render_certificate"]


def _time(day: int, seconds: int) -> str:
    if not MIN_DAY <= day <= MAX_DAY:
        return f"<day {day}>"
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{format_day(day)} {hours:02d}:{minutes:02d}:{secs:02d} UTC"


def _extension_lines(cert: Certificate) -> list[str]:
    lines: list[str] = []
    for ext in cert.extensions:
        if isinstance(ext, SubjectAltName):
            names = ", ".join(f"DNS:{name}" for name in ext.names)
            lines += ["X509v3 Subject Alternative Name:", f"    {names}"]
        elif isinstance(ext, BasicConstraints):
            lines += ["X509v3 Basic Constraints:",
                      f"    CA:{'TRUE' if ext.ca else 'FALSE'}"]
        elif isinstance(ext, KeyUsage):
            usages = [
                label for flag, label in (
                    (ext.digital_signature, "Digital Signature"),
                    (ext.key_cert_sign, "Certificate Sign"),
                ) if flag
            ]
            lines += ["X509v3 Key Usage:", f"    {', '.join(usages) or '(none)'}"]
        elif isinstance(ext, AuthorityKeyIdentifier):
            lines += ["X509v3 Authority Key Identifier:",
                      f"    keyid:{ext.key_id.hex().upper()}"]
        elif isinstance(ext, SubjectKeyIdentifier):
            lines += ["X509v3 Subject Key Identifier:",
                      f"    {ext.key_id.hex().upper()}"]
        elif isinstance(ext, CRLDistributionPoints):
            lines.append("X509v3 CRL Distribution Points:")
            lines += [f"    URI:{uri}" for uri in ext.uris]
        elif isinstance(ext, AuthorityInfoAccess):
            lines.append("Authority Information Access:")
            lines += [f"    OCSP - URI:{uri}" for uri in ext.ocsp]
            lines += [f"    CA Issuers - URI:{uri}" for uri in ext.ca_issuers]
        elif isinstance(ext, CertificatePolicies):
            lines.append("X509v3 Certificate Policies:")
            lines += [f"    Policy: {oid.dotted()}" for oid in ext.policy_oids]
        elif isinstance(ext, RawExtension):
            lines.append(f"Unknown extension ({ext.raw_oid.dotted()}): "
                         f"{len(ext.value)} bytes")
    return lines


def render_certificate(cert: Certificate) -> str:
    """Render one certificate the way ``openssl x509 -text`` would."""
    lines = [
        "Certificate:",
        "    Data:",
        f"        Version: {cert.version} (0x{cert.version - 1:x})",
        f"        Serial Number: {cert.serial} (0x{cert.serial:x})",
        "        Signature Algorithm: sha256WithRSAEncryption",
        f"        Issuer: {cert.issuer.rfc4514() or '(empty)'}",
        "        Validity:",
        f"            Not Before: {_time(cert.not_before, cert.not_before_secs)}",
        f"            Not After : {_time(cert.not_after, cert.not_after_secs)}",
        f"        Subject: {cert.subject.rfc4514() or '(empty)'}",
        "        Subject Public Key Info:",
        "            Public Key Algorithm: rsaEncryption",
        f"                RSA Public-Key: ({cert.public_key.bits} bit)",
        f"                Modulus: {hex(cert.public_key.n)}",
        f"                Exponent: {cert.public_key.e} "
        f"(0x{cert.public_key.e:x})",
    ]
    extension_lines = _extension_lines(cert)
    if extension_lines:
        lines.append("        X509v3 extensions:")
        lines += [f"            {line}" for line in extension_lines]
    lines += [
        "    Signature Algorithm: sha256WithRSAEncryption",
        f"        {hex(cert.signature)}",
        f"    SHA-256 Fingerprint: {cert.fingerprint_hex.upper()}",
    ]
    if cert.is_self_signed():
        lines.append("    (self-signed)")
    return "\n".join(lines)
