"""Object identifier registry.

A tiny but real OID type (dotted-decimal, DER-encodable arcs) plus the
registry of every OID the library emits: signature algorithms, distinguished
name attribute types, and the X.509 v3 extensions the paper's linking
methodology inspects (SAN, AKI, CRL distribution points, AIA, certificate
policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["OID", "SIG_SHA256_RSA", "RSA_ENCRYPTION"]


@dataclass(frozen=True, order=True)
class OID:
    """An ASN.1 object identifier, stored as a tuple of integer arcs."""

    arcs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.arcs) < 2:
            raise ValueError("OID needs at least two arcs")
        if self.arcs[0] > 2 or self.arcs[0] < 0:
            raise ValueError(f"first OID arc out of range: {self.arcs[0]}")
        if self.arcs[0] < 2 and self.arcs[1] > 39:
            raise ValueError(f"second OID arc out of range: {self.arcs[1]}")
        if any(arc < 0 for arc in self.arcs):
            raise ValueError("negative OID arc")

    @classmethod
    def parse(cls, dotted: str) -> "OID":
        """Parse dotted-decimal notation, e.g. ``'2.5.4.3'``."""
        try:
            arcs = tuple(int(part) for part in dotted.split("."))
        except ValueError:
            raise ValueError(f"not a dotted OID: {dotted!r}") from None
        return cls(arcs)

    def dotted(self) -> str:
        """Dotted-decimal representation."""
        return ".".join(str(arc) for arc in self.arcs)

    def __str__(self) -> str:
        return self.dotted()

    def __iter__(self) -> Iterator[int]:
        return iter(self.arcs)


# --- Algorithm identifiers -------------------------------------------------

#: rsaEncryption — SubjectPublicKeyInfo algorithm.
RSA_ENCRYPTION = OID.parse("1.2.840.113549.1.1.1")
#: sha256WithRSAEncryption — the only signature algorithm the toy PKI emits.
SIG_SHA256_RSA = OID.parse("1.2.840.113549.1.1.11")

# --- Distinguished-name attribute types ------------------------------------

CN = OID.parse("2.5.4.3")
COUNTRY = OID.parse("2.5.4.6")
LOCALITY = OID.parse("2.5.4.7")
STATE = OID.parse("2.5.4.8")
ORG = OID.parse("2.5.4.10")
ORG_UNIT = OID.parse("2.5.4.11")
SERIAL_NUMBER_ATTR = OID.parse("2.5.4.5")
EMAIL = OID.parse("1.2.840.113549.1.9.1")

#: Attribute-type OID → short RFC 4514 name, for Name string rendering.
DN_SHORT_NAMES: dict[OID, str] = {
    CN: "CN",
    COUNTRY: "C",
    LOCALITY: "L",
    STATE: "ST",
    ORG: "O",
    ORG_UNIT: "OU",
    SERIAL_NUMBER_ATTR: "serialNumber",
    EMAIL: "emailAddress",
}

_SHORT_NAME_TO_OID = {name: oid for oid, name in DN_SHORT_NAMES.items()}


def attribute_oid(short_name: str) -> OID:
    """Look up a DN attribute OID by its short name (``'CN'``, ``'O'``, …)."""
    try:
        return _SHORT_NAME_TO_OID[short_name]
    except KeyError:
        raise KeyError(f"unknown DN attribute {short_name!r}") from None


# --- X.509 v3 extensions ----------------------------------------------------

SUBJECT_KEY_ID = OID.parse("2.5.29.14")
KEY_USAGE = OID.parse("2.5.29.15")
SUBJECT_ALT_NAME = OID.parse("2.5.29.17")
BASIC_CONSTRAINTS = OID.parse("2.5.29.19")
CRL_DISTRIBUTION_POINTS = OID.parse("2.5.29.31")
CERTIFICATE_POLICIES = OID.parse("2.5.29.32")
AUTHORITY_KEY_ID = OID.parse("2.5.29.35")
AUTHORITY_INFO_ACCESS = OID.parse("1.3.6.1.5.5.7.1.1")

#: AccessDescription access methods inside AIA.
AIA_OCSP = OID.parse("1.3.6.1.5.5.7.48.1")
AIA_CA_ISSUERS = OID.parse("1.3.6.1.5.5.7.48.2")

EXTENSION_NAMES: dict[OID, str] = {
    SUBJECT_KEY_ID: "subjectKeyIdentifier",
    KEY_USAGE: "keyUsage",
    SUBJECT_ALT_NAME: "subjectAltName",
    BASIC_CONSTRAINTS: "basicConstraints",
    CRL_DISTRIBUTION_POINTS: "cRLDistributionPoints",
    CERTIFICATE_POLICIES: "certificatePolicies",
    AUTHORITY_KEY_ID: "authorityKeyIdentifier",
    AUTHORITY_INFO_ACCESS: "authorityInfoAccess",
}
