"""Toy-scale but mathematically real RSA.

The simulated PKI signs and verifies with genuine modular-exponentiation
RSA over small moduli (default 256-bit), generated deterministically from a
caller-supplied :class:`random.Random`.  Signatures are
``sig = H(message)^d mod n`` with SHA-256 as ``H`` — textbook RSA, which is
exactly enough to make chain validation *real*: a certificate whose issuer
key does not match fails verification, a self-signed certificate verifies
under its own key, and tampered bytes break the signature.

Key sizes this small are trivially factorable; that is irrelevant here — no
secrecy is required, only the verify-under-the-right-key semantics that the
paper's ``openssl verify`` step depends on.

Keys hash and compare by ``(n, e)``, so the paper's key-sharing analysis
("one Lancom key on 6.5 % of invalid certificates") is a set operation over
:attr:`PublicKey.fingerprint`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["PublicKey", "PrivateKey", "KeyPair", "generate_keypair"]

_DEFAULT_BITS = 256
_E = 65537

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
)


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def fingerprint(self) -> bytes:
        """SHA-256 over the modulus and exponent; stable key identity."""
        return _fingerprint(self.n, self.e)

    def verify(self, message: bytes, signature: int) -> bool:
        """Return True if ``signature`` is valid for ``message``."""
        if not 0 <= signature < self.n:
            return False
        expected = _digest_int(message) % self.n
        return pow(signature, self.e, self.n) == expected


@lru_cache(maxsize=65536)
def _fingerprint(n: int, e: int) -> bytes:
    material = n.to_bytes((n.bit_length() + 7) // 8 or 1, "big")
    material += e.to_bytes((e.bit_length() + 7) // 8 or 1, "big")
    return hashlib.sha256(material).digest()


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key; holds the full parameter set."""

    n: int
    e: int
    d: int

    def sign(self, message: bytes) -> int:
        """Textbook RSA signature over SHA-256(message)."""
        return pow(_digest_int(message) % self.n, self.d, self.n)

    def public_key(self) -> PublicKey:
        """The matching public key."""
        return PublicKey(self.n, self.e)


@dataclass(frozen=True)
class KeyPair:
    """A generated public/private pair."""

    public: PublicKey
    private: PrivateKey


def _digest_int(message: bytes) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big")


def generate_keypair(rng: random.Random, bits: int = _DEFAULT_BITS) -> KeyPair:
    """Generate a deterministic RSA key pair from ``rng``.

    ``bits`` is the modulus size; each prime is ``bits // 2`` long.  The
    same RNG state always yields the same key, which keeps whole-world
    simulations reproducible from a single seed.
    """
    if bits < 32:
        raise ValueError(f"modulus too small: {bits} bits")
    half = bits // 2
    while True:
        p = _random_prime(rng, half)
        q = _random_prime(rng, bits - half)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _E == 0:
            continue
        d = pow(_E, -1, phi)
        return KeyPair(PublicKey(n, _E), PrivateKey(n, _E, d))


def _random_prime(rng: random.Random, bits: int) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    # Miller-Rabin.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True
