"""Fluent certificate builder.

Used by every certificate-producing actor in the simulation: real CAs
issuing valid leaves, intermediate CAs, and — most importantly — device
firmware generating the self-signed certificates the paper studies.  The
builder accepts deliberately broken inputs (inverted validity windows,
empty subjects, far-future expiries) because the invalid-certificate
population depends on them.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..simtime import MAX_DAY, MIN_DAY
from .certificate import Certificate
from .extensions import (
    AuthorityInfoAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CRLDistributionPoints,
    CertificatePolicies,
    Extensions,
    KeyUsage,
    SubjectAltName,
    SubjectKeyIdentifier,
    TypedExtension,
)
from .keys import KeyPair, generate_keypair
from .name import Name
from .oid import OID

__all__ = ["CertificateBuilder"]


class CertificateBuilder:
    """Accumulates certificate fields, then signs.

    Example — a device's self-signed certificate::

        cert = (
            CertificateBuilder()
            .subject(Name.common_name('192.168.1.1'))
            .validity(day, day + 7300)
            .public_key(keypair.public)
            .self_sign(keypair.private)
        )
    """

    def __init__(self) -> None:
        self._version = 3
        self._serial: Optional[int] = None
        self._subject: Optional[Name] = None
        self._issuer: Optional[Name] = None
        self._not_before: Optional[int] = None
        self._not_after: Optional[int] = None
        self._not_before_secs = 0
        self._not_after_secs = 0
        self._keypair: Optional[KeyPair] = None
        self._extensions: list[TypedExtension] = []

    # --- field setters --------------------------------------------------------

    def version(self, version: int, strict: bool = True) -> "CertificateBuilder":
        """X.509 version, 1 or 3 (v1 certificates carry no extensions).

        ``strict=False`` accepts the nonsense version numbers broken
        firmware emits (2, 4, 13 in the paper's corpus, footnote 5); the
        validation layer classifies such certificates as malformed.
        """
        if strict and version not in (1, 3):
            raise ValueError(f"unsupported version {version}")
        if version < 1:
            raise ValueError(f"version must be positive, got {version}")
        self._version = version
        return self

    def serial(self, serial: int) -> "CertificateBuilder":
        """Serial number; random if never set."""
        self._serial = serial
        return self

    def subject(self, name: Name) -> "CertificateBuilder":
        """Subject distinguished name."""
        self._subject = name
        return self

    def issuer(self, name: Name) -> "CertificateBuilder":
        """Issuer name; defaults to the subject for self-signed builds."""
        self._issuer = name
        return self

    def validity(
        self,
        not_before: int,
        not_after: int,
        not_before_secs: int = 0,
        not_after_secs: int = 0,
    ) -> "CertificateBuilder":
        """Validity window in day indices plus optional seconds-in-day.

        Inverted windows (``not_after < not_before``) are accepted: 5.38 %
        of the paper's invalid certificates have negative validity periods.
        """
        for day in (not_before, not_after):
            if not MIN_DAY <= day <= MAX_DAY:
                raise ValueError(f"day {day} not DER-representable")
        for secs in (not_before_secs, not_after_secs):
            if not 0 <= secs < 86400:
                raise ValueError(f"seconds-in-day out of range: {secs}")
        self._not_before = not_before
        self._not_after = not_after
        self._not_before_secs = not_before_secs
        self._not_after_secs = not_after_secs
        return self

    def keypair(self, pair: KeyPair) -> "CertificateBuilder":
        """Subject key pair (private half needed only for self-signing)."""
        self._keypair = pair
        return self

    def public_key(self, key) -> "CertificateBuilder":
        """Subject public key when the private half is elsewhere."""
        self._keypair = KeyPair(public=key, private=None)  # type: ignore[arg-type]
        return self

    # --- extension helpers ------------------------------------------------------

    def add_extension(self, extension: TypedExtension) -> "CertificateBuilder":
        """Append an already-built extension."""
        self._extensions.append(extension)
        return self

    def ca(self, is_ca: bool = True) -> "CertificateBuilder":
        """Mark as a CA certificate via basicConstraints."""
        self._extensions.append(BasicConstraints(ca=is_ca))
        if is_ca:
            self._extensions.append(KeyUsage(key_cert_sign=True))
        return self

    def subject_alt_names(self, names: Sequence[str]) -> "CertificateBuilder":
        """Attach a subjectAltName list."""
        if names:
            self._extensions.append(SubjectAltName(tuple(names)))
        return self

    def authority_key_id(self, key_id: bytes) -> "CertificateBuilder":
        """Attach the issuer's key identifier."""
        self._extensions.append(AuthorityKeyIdentifier(key_id))
        return self

    def subject_key_id(self, key_id: bytes) -> "CertificateBuilder":
        """Attach this certificate's own key identifier."""
        self._extensions.append(SubjectKeyIdentifier(key_id))
        return self

    def crl_uris(self, uris: Sequence[str]) -> "CertificateBuilder":
        """Attach CRL distribution points."""
        if uris:
            self._extensions.append(CRLDistributionPoints(tuple(uris)))
        return self

    def aia(
        self, ocsp: Sequence[str] = (), ca_issuers: Sequence[str] = ()
    ) -> "CertificateBuilder":
        """Attach authorityInfoAccess (OCSP responders, caIssuers URLs)."""
        if ocsp or ca_issuers:
            self._extensions.append(
                AuthorityInfoAccess(tuple(ocsp), tuple(ca_issuers))
            )
        return self

    def policies(self, policy_oids: Sequence[OID]) -> "CertificateBuilder":
        """Attach certificatePolicies OIDs."""
        if policy_oids:
            self._extensions.append(CertificatePolicies(tuple(policy_oids)))
        return self

    # --- signing -----------------------------------------------------------------

    def self_sign(
        self, private_key=None, rng: Optional[random.Random] = None
    ) -> Certificate:
        """Sign with the subject's own key (issuer defaults to subject)."""
        pair = self._require_keypair(rng)
        signer = private_key if private_key is not None else pair.private
        if signer is None:
            raise ValueError("self_sign needs the subject private key")
        issuer = self._issuer if self._issuer is not None else self._subject
        return self._finish(issuer, signer, rng)

    def sign_with(
        self,
        issuer_name: Name,
        issuer_private_key,
        rng: Optional[random.Random] = None,
    ) -> Certificate:
        """Sign with an issuing CA's name and private key."""
        self._require_keypair(rng)
        return self._finish(issuer_name, issuer_private_key, rng)

    # --- internals ------------------------------------------------------------------

    def _require_keypair(self, rng: Optional[random.Random]) -> KeyPair:
        if self._keypair is None:
            if rng is None:
                raise ValueError("no key set and no rng to generate one")
            self._keypair = generate_keypair(rng)
        return self._keypair

    def _finish(
        self, issuer: Optional[Name], signer, rng: Optional[random.Random]
    ) -> Certificate:
        if self._subject is None:
            raise ValueError("subject is required (Name.empty() for blank)")
        if issuer is None:
            raise ValueError("issuer is required")
        if self._not_before is None or self._not_after is None:
            raise ValueError("validity window is required")
        serial = self._serial
        if serial is None:
            serial = (rng or random.Random()).getrandbits(63)
        extensions = Extensions(tuple(self._extensions)) if self._version == 3 else Extensions()
        return Certificate.sign(
            version=self._version,
            serial=serial,
            issuer=issuer,
            subject=self._subject,
            not_before=self._not_before,
            not_after=self._not_after,
            public_key=self._keypair.public,
            extensions=extensions,
            signing_key=signer,
            not_before_secs=self._not_before_secs,
            not_after_secs=self._not_after_secs,
        )
