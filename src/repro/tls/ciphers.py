"""TLS cipher-suite registry.

A compact model of the cipher suites the 2012–2015 scan era actually saw,
with the one property the paper cares about (§5.2, footnote 10): whether
the key exchange provides **Perfect Forward Secrecy**.  The paper observed
that Lancom devices — the ones sharing a single RSA key fleet-wide — also
negotiated non-PFS ciphers, leaving their historic traffic decryptable if
that one key ever leaks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

__all__ = ["KeyExchange", "CipherSuite", "REGISTRY", "suite", "ZGRAB_OFFER"]


class KeyExchange(enum.Enum):
    """Key-exchange families; ephemeral DH variants provide PFS."""

    RSA = "rsa"
    DHE = "dhe"
    ECDHE = "ecdhe"

    @property
    def forward_secure(self) -> bool:
        return self in (KeyExchange.DHE, KeyExchange.ECDHE)


@dataclass(frozen=True)
class CipherSuite:
    """One negotiable suite."""

    code: int
    name: str
    key_exchange: KeyExchange

    @property
    def forward_secure(self) -> bool:
        """Does the suite provide Perfect Forward Secrecy?"""
        return self.key_exchange.forward_secure


_SUITES = (
    CipherSuite(0x002F, "TLS_RSA_WITH_AES_128_CBC_SHA", KeyExchange.RSA),
    CipherSuite(0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA", KeyExchange.RSA),
    CipherSuite(0x000A, "TLS_RSA_WITH_3DES_EDE_CBC_SHA", KeyExchange.RSA),
    CipherSuite(0x0005, "TLS_RSA_WITH_RC4_128_SHA", KeyExchange.RSA),
    CipherSuite(0x0033, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA", KeyExchange.DHE),
    CipherSuite(0x0039, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA", KeyExchange.DHE),
    CipherSuite(0xC013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA", KeyExchange.ECDHE),
    CipherSuite(0xC014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA", KeyExchange.ECDHE),
    CipherSuite(0xC02F, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", KeyExchange.ECDHE),
)

#: code → suite.
REGISTRY: dict[int, CipherSuite] = {s.code: s for s in _SUITES}


def suite(code: int) -> CipherSuite:
    """Look up a suite by code."""
    try:
        return REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown cipher suite 0x{code:04x}") from None


#: The permissive offer a zgrab-style scanner sends: everything, PFS first.
ZGRAB_OFFER: tuple[int, ...] = (
    0xC02F, 0xC014, 0xC013, 0x0039, 0x0033, 0x0035, 0x002F, 0x000A, 0x0005,
)


def forward_secure_fraction(codes: Iterable[int]) -> float:
    """Share of negotiated suites that provide PFS."""
    codes = list(codes)
    if not codes:
        return 0.0
    return sum(1 for code in codes if suite(code).forward_secure) / len(codes)
