"""Per-vendor TLS stack profiles.

Maps each device family of the vendor catalog to the handshake behaviour
of its firmware stack.  The calibration hooks into two of the paper's
observations:

* **Lancom devices do not support PFS** (footnote 10) — combined with the
  fleet-wide shared RSA key, their historic traffic is decryptable;
* embedded stacks expose *stack-constant* transport traits (TCP window,
  TTL, protocol ceiling) that identify the firmware family — usable to
  split cross-vendor coincidence groups during linking (the paper's §6.3
  future work).

Websites run mainstream server stacks with modern suites.
"""

from __future__ import annotations

from .handshake import ServerProfile, TLSVersion

__all__ = ["VENDOR_TLS_PROFILES", "WEBSITE_TLS_PROFILE", "tls_profile_for"]

_RSA_ONLY = (0x002F, 0x0035, 0x000A)
_RSA_RC4 = (0x0005, 0x002F, 0x000A)
_DHE_CAPABLE = (0x0033, 0x0039, 0x002F, 0x0035)
_MODERN = (0xC02F, 0xC013, 0xC014, 0x0033, 0x002F, 0x0035)

#: vendor-profile name → stack behaviour.
VENDOR_TLS_PROFILES: dict[str, ServerProfile] = {
    # Lancom: RSA-only — no PFS, per the paper's footnote 10.
    "lancom": ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0, tcp_window=5840, ip_ttl=64),
    "fritzbox": ServerProfile(_DHE_CAPABLE, TLSVersion.TLS1_2, tcp_window=14600, ip_ttl=64),
    "budget-router": ServerProfile(_RSA_RC4, TLSVersion.SSL3, tcp_window=5792, ip_ttl=64),
    "dvr": ServerProfile(_RSA_RC4, TLSVersion.TLS1_0, tcp_window=8192, ip_ttl=255),
    "playbook": ServerProfile(_MODERN, TLSVersion.TLS1_2, tcp_window=65535, ip_ttl=128),
    "generic-router": ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0, tcp_window=5840, ip_ttl=64),
    "wd-mycloud": ServerProfile(_DHE_CAPABLE, TLSVersion.TLS1_1, tcp_window=14600, ip_ttl=64),
    "vmware": ServerProfile(_MODERN, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=64),
    "empty-issuer": ServerProfile(_RSA_ONLY, TLSVersion.SSL3, tcp_window=4380, ip_ttl=64),
    "enterprise-gateway": ServerProfile(_DHE_CAPABLE, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=64),
    "vpn-concentrator": ServerProfile(_MODERN, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=255),
    "enterprise-firewall": ServerProfile(_DHE_CAPABLE, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=255),
    "ip-camera": ServerProfile(_RSA_RC4, TLSVersion.TLS1_0, tcp_window=8192, ip_ttl=64),
    "legacy-v1": ServerProfile(_RSA_RC4, TLSVersion.SSL3, tcp_window=4096, ip_ttl=32),
    "cpe-fleet": ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0, tcp_window=5840, ip_ttl=64),
    "firmware-baked": ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0, tcp_window=5840, ip_ttl=64),
    "misc-appliance": ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0, tcp_window=8760, ip_ttl=64),
    "broken-version": ServerProfile(_RSA_RC4, TLSVersion.SSL3, tcp_window=2048, ip_ttl=64),
    "managed-gateway": ServerProfile(_MODERN, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=64),
}

#: Mainstream web-server stack.
WEBSITE_TLS_PROFILE = ServerProfile(
    _MODERN, TLSVersion.TLS1_2, tcp_window=29200, ip_ttl=64
)

_FALLBACK = ServerProfile(_RSA_ONLY, TLSVersion.TLS1_0)


def tls_profile_for(vendor_name: str) -> ServerProfile:
    """Stack profile for a vendor; RSA-only fallback for unknown names."""
    return VENDOR_TLS_PROFILES.get(vendor_name, _FALLBACK)
