"""Server-side TLS negotiation and network fingerprints.

A :class:`ServerProfile` captures the handshake-visible behaviour of one
firmware stack: supported suites in preference order, maximum TLS version,
and the transport traits (initial TCP window, IP TTL) the paper names as
candidate linking features it had to leave to future work (§6.3: "features
that can be observed from the network connection used to collect the
certificate (e.g., the initial TCP window size)").

:func:`negotiate` implements server-preference selection, as embedded
stacks overwhelmingly do, and yields the :class:`HandshakeRecord` a
scanner stores next to the certificate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional, Sequence

from .ciphers import ZGRAB_OFFER, suite

__all__ = ["TLSVersion", "ServerProfile", "HandshakeRecord", "negotiate"]


class TLSVersion(enum.IntEnum):
    """Protocol versions of the scan era."""

    SSL3 = 0x0300
    TLS1_0 = 0x0301
    TLS1_1 = 0x0302
    TLS1_2 = 0x0303

    def label(self) -> str:
        return {"SSL3": "SSLv3", "TLS1_0": "TLSv1.0",
                "TLS1_1": "TLSv1.1", "TLS1_2": "TLSv1.2"}[self.name]


@dataclass(frozen=True)
class ServerProfile:
    """Handshake behaviour of one firmware stack."""

    #: Suites the stack supports, in *server* preference order.
    suites: tuple[int, ...]
    max_version: TLSVersion = TLSVersion.TLS1_0
    #: Initial TCP window the SYN-ACK advertises (a stack constant).
    tcp_window: int = 14600
    #: Initial IP TTL (another stack constant: 64 Linux, 255 VxWorks...).
    ip_ttl: int = 64

    def supports_pfs(self) -> bool:
        """Can the stack ever negotiate a forward-secure suite?"""
        return any(suite(code).forward_secure for code in self.suites)


class HandshakeRecord(NamedTuple):
    """What one handshake reveals: protocol, cipher, transport traits.

    Hashable — the network-fingerprint linking extension uses records
    (minus the negotiated cipher, which depends on the client offer) as
    grouping keys.
    """

    version: int
    cipher: int
    tcp_window: int
    ip_ttl: int

    @property
    def forward_secure(self) -> bool:
        return suite(self.cipher).forward_secure

    def stack_fingerprint(self) -> tuple[int, int, int]:
        """The client-independent traits: (version, window, ttl)."""
        return (self.version, self.tcp_window, self.ip_ttl)


def negotiate(
    profile: ServerProfile,
    client_offer: Sequence[int] = ZGRAB_OFFER,
    client_max_version: TLSVersion = TLSVersion.TLS1_2,
) -> Optional[HandshakeRecord]:
    """Run one handshake; None when no suite is mutually supported.

    Server-preference selection: the first server suite the client also
    offers wins (embedded stacks rarely honour client preference).
    """
    offered = set(client_offer)
    chosen = next((code for code in profile.suites if code in offered), None)
    if chosen is None:
        return None
    version = min(profile.max_version, client_max_version)
    return HandshakeRecord(
        version=int(version),
        cipher=chosen,
        tcp_window=profile.tcp_window,
        ip_ttl=profile.ip_ttl,
    )
