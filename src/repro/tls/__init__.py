"""TLS substrate: cipher suites, handshake negotiation, stack profiles."""

from .ciphers import REGISTRY, ZGRAB_OFFER, CipherSuite, KeyExchange, suite
from .handshake import HandshakeRecord, ServerProfile, TLSVersion, negotiate
from .profiles import VENDOR_TLS_PROFILES, WEBSITE_TLS_PROFILE, tls_profile_for

__all__ = [
    "REGISTRY",
    "ZGRAB_OFFER",
    "CipherSuite",
    "KeyExchange",
    "suite",
    "HandshakeRecord",
    "ServerProfile",
    "TLSVersion",
    "negotiate",
    "VENDOR_TLS_PROFILES",
    "WEBSITE_TLS_PROFILE",
    "tls_profile_for",
]
