"""§6.4.2's per-field case studies.

The paper explains each field's consistency numbers by slicing the linked
population: FRITZ!Boxes dominate Public Key linking (51.9 % of PK-linked
certificates, 27 % IP-level consistency inside German churn ISPs — remove
them and PK's IP-level consistency jumps to 69.4 %); PlayBooks dominate
Issuer+Serial (23.1 %, mobile); dynamic-DNS domains dominate the
URL-formatted Common Names (myfritz.net 16 %, dyndns/selfhost 8 %).

:func:`split_consistency` is the shared mechanic: partition a field's
linked groups by a predicate and score each side separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..scanner.dataset import ScanDataset
from .consistency import ASLookup, group_consistency
from .linking import LinkedGroup, LinkResult

__all__ = [
    "SubsetConsistency",
    "split_consistency",
    "fritzbox_predicate",
    "playbook_predicate",
    "CommonNameDomains",
    "common_name_domains",
]


@dataclass(frozen=True)
class SubsetConsistency:
    """Consistency of the matching vs non-matching groups of one field."""

    matching_certificates: int
    matching_fraction: float          # of the field's linked certificates
    matching_ip: float
    matching_as: float
    rest_ip: float
    rest_as: float


def split_consistency(
    dataset: ScanDataset,
    result: LinkResult,
    predicate: Callable[[ScanDataset, LinkedGroup], bool],
    as_of: ASLookup,
) -> SubsetConsistency:
    """Partition a field's groups by ``predicate`` and score both sides."""
    matching: list[LinkedGroup] = []
    rest: list[LinkedGroup] = []
    for group in result.groups:
        (matching if predicate(dataset, group) else rest).append(group)

    def weighted(groups: list[LinkedGroup], level: str) -> float:
        total = sum(len(group) for group in groups)
        if not total:
            return 0.0
        return (
            sum(
                len(group) * group_consistency(dataset, group, level, as_of)
                for group in groups
            )
            / total
        )

    matched_certs = sum(len(group) for group in matching)
    all_certs = result.total_linked or 1
    return SubsetConsistency(
        matching_certificates=matched_certs,
        matching_fraction=matched_certs / all_certs,
        matching_ip=weighted(matching, "ip"),
        matching_as=weighted(matching, "as"),
        rest_ip=weighted(rest, "ip"),
        rest_as=weighted(rest, "as"),
    )


def fritzbox_predicate(dataset: ScanDataset, group: LinkedGroup) -> bool:
    """The paper's FRITZ!Box marker: the ``fritz.fonwlan.box`` SAN."""
    for fingerprint in group.fingerprints:
        cert = dataset.certificate(fingerprint)
        if "fritz.fonwlan.box" in cert.extensions.subject_alt_names:
            return True
    return False


def playbook_predicate(dataset: ScanDataset, group: LinkedGroup) -> bool:
    """The paper's PlayBook marker: an ``PlayBook: <MAC>`` issuer."""
    for fingerprint in group.fingerprints:
        issuer_cn = dataset.certificate(fingerprint).issuer_cn
        if issuer_cn and issuer_cn.startswith("PlayBook: "):
            return True
    return False


@dataclass(frozen=True)
class CommonNameDomains:
    """§6.4.2's Common Name breakdown."""

    linked_certificates: int
    url_formatted: int                 # CN contains a dot (domain-shaped)
    url_fraction: float
    #: second-level-domain → certificates, over the URL-formatted subset.
    by_second_level: dict[str, int]
    dyndns_certificates: int           # 'dyndns' or 'selfhost' in the CN


def common_name_domains(
    dataset: ScanDataset, result: LinkResult, top_n: int = 10
) -> CommonNameDomains:
    """Break the CN-linked population down by second-level domain.

    Paper: 21 % of CN-linked certificates have URL-formatted names; the
    biggest second-level domain is ``myfritz.net`` (16 %), plus 8 % with
    'dyndns' or 'selfhost' — devices advertising their dynamic-DNS homes.
    """
    linked = 0
    url_formatted = 0
    by_sld: dict[str, int] = {}
    dyndns = 0
    for group in result.groups:
        for fingerprint in group.fingerprints:
            linked += 1
            cn = dataset.certificate(fingerprint).subject_cn
            if not cn or "." not in cn:
                continue
            url_formatted += 1
            labels = cn.lower().rsplit(".", 2)
            sld = ".".join(labels[-2:]) if len(labels) >= 2 else cn.lower()
            by_sld[sld] = by_sld.get(sld, 0) + 1
            if "dyndns" in cn.lower() or "selfhost" in cn.lower():
                dyndns += 1
    top = dict(
        sorted(by_sld.items(), key=lambda kv: kv[1], reverse=True)[:top_n]
    )
    return CommonNameDomains(
        linked_certificates=linked,
        url_formatted=url_formatted,
        url_fraction=url_formatted / linked if linked else 0.0,
        by_second_level=top,
        dyndns_certificates=dyndns,
    )
