"""§6.3.1 — Linkable certificate features.

Extracts the ten candidate linking features of Tables 5 and 6 from a
certificate and measures their non-uniqueness across a corpus.  Feature
values are opaque hashables; ``None`` means the certificate does not carry
the feature (the paper found >99 % of invalid certificates lack CRL, AIA,
OCSP, and policy OIDs).

Two extraction modes exist:

* :func:`extract` — the raw value, used for the Table 5 census;
* :func:`linkable_value` — the value as the linking pipeline consumes it,
  which additionally drops Common Names that are IPv4 addresses (§6.4.1:
  46.9 % of invalid Common Names are IP literals and linking on them would
  be circular when IP-level consistency is the evaluation metric).

The corpus-wide measurements (:func:`non_uniqueness_census`,
:func:`absence_rates`) read the dataset's cached
:class:`~repro.core.kernels.FeatureMatrix` — one interned value-id column
per feature — instead of re-extracting every certificate per feature.
Setting ``REPRO_LINK_PARITY=1`` makes them (and every other kernel-backed
linking stage) re-run the naive per-object path and assert equality.
"""

from __future__ import annotations

import enum
import os
from typing import Hashable, Iterable, Optional

from ..net.ip import looks_like_ipv4
from ..scanner.dataset import ScanDataset
from ..x509.certificate import Certificate

__all__ = [
    "Feature",
    "extract",
    "linkable_value",
    "non_uniqueness_census",
    "absence_rates",
    "LINK_PARITY_ENV",
]

#: Environment knob: every kernel-backed linking stage re-runs the naive
#: row path and asserts bitwise-identical results (mirror of
#: ``REPRO_DATASET_PARITY`` for the §6 kernels).
LINK_PARITY_ENV = "REPRO_LINK_PARITY"


def link_parity_enabled() -> bool:
    """True when the kernel/naive cross-check knob is set."""
    return bool(os.environ.get(LINK_PARITY_ENV))


class Feature(enum.Enum):
    """The candidate linking fields of Tables 5 and 6."""

    NOT_BEFORE = "Not Before"
    COMMON_NAME = "Common Name"
    NOT_AFTER = "Not After"
    PUBLIC_KEY = "Public Key"
    SAN_LIST = "SAN"
    ISSUER_SERIAL = "IN + SN"
    CRL = "CRL"
    AIA = "AIA"
    OCSP = "OCSP"
    OID = "OID"


def extract(cert: Certificate, feature: Feature) -> Optional[Hashable]:
    """Raw feature value, or None when the certificate lacks it."""
    if feature is Feature.NOT_BEFORE:
        return cert.not_before_stamp
    if feature is Feature.NOT_AFTER:
        return cert.not_after_stamp
    if feature is Feature.COMMON_NAME:
        return cert.subject_cn
    if feature is Feature.PUBLIC_KEY:
        return cert.public_key
    if feature is Feature.SAN_LIST:
        names = cert.extensions.subject_alt_names
        return names if names else None
    if feature is Feature.ISSUER_SERIAL:
        return (cert.issuer, cert.serial)
    if feature is Feature.CRL:
        uris = cert.extensions.crl_uris
        return uris if uris else None
    if feature is Feature.AIA:
        uris = cert.extensions.ca_issuer_uris
        return uris if uris else None
    if feature is Feature.OCSP:
        uris = cert.extensions.ocsp_uris
        return uris if uris else None
    if feature is Feature.OID:
        oids = cert.extensions.policy_oids
        return oids if oids else None
    raise AssertionError(f"unhandled feature {feature}")


def dropped_for_linking(feature: Feature, value: Hashable) -> bool:
    """§6.4.1: IPv4-literal Common Names are not linkable.

    The single source of truth shared by :func:`linkable_value` and the
    :class:`~repro.core.kernels.FeatureMatrix` build.
    """
    return (
        feature is Feature.COMMON_NAME
        and isinstance(value, str)
        and looks_like_ipv4(value)
    )


def linkable_value(cert: Certificate, feature: Feature) -> Optional[Hashable]:
    """Feature value as the linking pipeline uses it.

    Identical to :func:`extract` except that IPv4-literal Common Names are
    dropped (§6.4.1).
    """
    value = extract(cert, feature)
    if dropped_for_linking(feature, value):
        return None
    return value


def _naive_non_uniqueness_census(
    dataset: ScanDataset, fingerprints: list[bytes]
) -> dict[Feature, float]:
    """The pre-kernel Table 5 path: one full extraction sweep per feature."""
    result: dict[Feature, float] = {}
    for feature in Feature:
        counts: dict[Hashable, int] = {}
        carriers = 0
        for fingerprint in fingerprints:
            value = extract(dataset.certificate(fingerprint), feature)
            if value is None:
                continue
            carriers += 1
            counts[value] = counts.get(value, 0) + 1
        if carriers == 0:
            result[feature] = 0.0
            continue
        shared = sum(count for count in counts.values() if count > 1)
        result[feature] = shared / carriers
    return result


def non_uniqueness_census(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> dict[Feature, float]:
    """Table 5: per feature, the fraction of carrying certificates whose
    value is shared with at least one other certificate."""
    fingerprints = list(fingerprints)
    matrix = dataset.feature_matrix
    rows = [matrix.rows[fingerprint] for fingerprint in fingerprints]
    result: dict[Feature, float] = {}
    for feature in Feature:
        column = matrix.raw_ids[feature]
        counts: dict[int, int] = {}
        carriers = 0
        for row in rows:
            value_id = column[row]
            if value_id < 0:
                continue
            carriers += 1
            counts[value_id] = counts.get(value_id, 0) + 1
        if carriers == 0:
            result[feature] = 0.0
            continue
        shared = sum(count for count in counts.values() if count > 1)
        result[feature] = shared / carriers
    if link_parity_enabled():
        naive = _naive_non_uniqueness_census(dataset, fingerprints)
        assert result == naive, f"census parity: {result} != {naive}"
    return result


def _naive_absence_rates(
    dataset: ScanDataset, fingerprints: list[bytes]
) -> dict[Feature, float]:
    """The pre-kernel absence path: one extraction sweep per feature."""
    total = len(fingerprints)
    result: dict[Feature, float] = {}
    for feature in Feature:
        missing = sum(
            1
            for fingerprint in fingerprints
            if extract(dataset.certificate(fingerprint), feature) is None
        )
        result[feature] = missing / total if total else 0.0
    return result


def absence_rates(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> dict[Feature, float]:
    """Fraction of certificates lacking each feature entirely.

    The paper: 99.2 % of invalid certificates have no CRL, 99.3 % no AIA
    location, 99.9 % no OCSP responder, 99.9 % no policy OID.
    """
    fingerprints = list(fingerprints)
    matrix = dataset.feature_matrix
    rows = [matrix.rows[fingerprint] for fingerprint in fingerprints]
    total = len(rows)
    result: dict[Feature, float] = {}
    for feature in Feature:
        column = matrix.raw_ids[feature]
        missing = sum(1 for row in rows if column[row] < 0)
        result[feature] = missing / total if total else 0.0
    if link_parity_enabled():
        naive = _naive_absence_rates(dataset, fingerprints)
        assert result == naive, f"absence parity: {result} != {naive}"
    return result
