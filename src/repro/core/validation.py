"""§4.2 — Isolating invalid certificates.

The equivalent of the paper's ``openssl verify`` pass: every certificate in
the corpus is classified against the trust store, with all intermediates
pre-registered so transvalid chains still validate, and expiry ignored.
Certificates with unsupported version numbers are disregarded, mirroring
the paper's removal of the 89,667 version-2/4/13 certificates.

The output :class:`ValidationReport` is the working set every later
analysis consumes: the invalid and valid fingerprint sets plus the
invalid-reason breakdown (§4.2: 88.0 % self-signed, 11.99 % untrusted
issuer, 0.01 % other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from ..x509.certificate import Certificate
from ..x509.chain import ChainVerifier, VerifyResult, VerifyStatus
from ..x509.truststore import TrustStore
from .features import link_parity_enabled

__all__ = ["ValidationReport", "validate_dataset"]


@dataclass
class ValidationReport:
    """Classification of every certificate in a scan corpus."""

    results: dict[bytes, VerifyResult]
    valid: set[bytes] = field(default_factory=set)
    invalid: set[bytes] = field(default_factory=set)
    disregarded: set[bytes] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.valid and not self.invalid:
            for fingerprint, result in self.results.items():
                if result.status is VerifyStatus.MALFORMED:
                    self.disregarded.add(fingerprint)
                elif result.is_valid:
                    self.valid.add(fingerprint)
                else:
                    self.invalid.add(fingerprint)

    @property
    def considered(self) -> int:
        """Certificates kept for analysis (valid + invalid)."""
        return len(self.valid) + len(self.invalid)

    @property
    def invalid_fraction(self) -> float:
        """Invalid share of the considered corpus (paper: 87.9 %)."""
        return len(self.invalid) / self.considered

    def is_invalid(self, fingerprint: bytes) -> bool:
        return fingerprint in self.invalid

    def reason_breakdown(self) -> dict[VerifyStatus, float]:
        """Fractions of invalid certificates per failure class."""
        counts: dict[VerifyStatus, int] = {}
        for fingerprint in self.invalid:
            status = self.results[fingerprint].status
            counts[status] = counts.get(status, 0) + 1
        total = len(self.invalid)
        return {status: count / total for status, count in counts.items()}

    def status_of(self, fingerprint: bytes) -> VerifyStatus:
        return self.results[fingerprint].status


def validate_dataset(
    dataset: ScanDataset,
    trust_store: TrustStore,
    extra_intermediates: Iterable[Certificate] = (),
) -> ValidationReport:
    """Run the full §4.2 isolation over a scan corpus.

    All CA certificates observed anywhere in the corpus become chain
    candidates before any leaf is judged — the paper's transvalid handling.
    """
    certificates = list(dataset.certificates.values())
    extra_intermediates = tuple(extra_intermediates)
    verifier = ChainVerifier(trust_store, extra_intermediates)
    for certificate in certificates:
        verifier.add_intermediate(certificate)
    results = verifier.verify_all(certificates)
    if link_parity_enabled():
        naive = ChainVerifier(trust_store, extra_intermediates, memoize=False)
        for certificate in certificates:
            naive.add_intermediate(certificate)
        naive_results = naive.verify_all(certificates)
        assert naive_results == results, "validation memoization parity failure"
    report = ValidationReport(results=results)
    obs.inc("validation.certs_valid", len(report.valid))
    obs.inc("validation.certs_invalid", len(report.invalid))
    obs.inc("validation.certs_disregarded", len(report.disregarded))
    return report
