"""The paper's core contribution: validation, analysis, linking, tracking."""

from .consistency import ConsistencyReport, evaluate_link_result, group_consistency
from .dedup import DedupResult, classify_unique_certificates
from .features import Feature, absence_rates, extract, linkable_value, non_uniqueness_census
from .linking import LinkResult, LinkedGroup, group_by_feature, link_on_feature
from .pipeline import (
    DEFAULT_CONSISTENCY_THRESHOLD,
    FeatureEvaluation,
    LifetimeImprovement,
    PipelineResult,
    evaluate_all_features,
    iterative_link,
    lifetime_improvement,
)
from .tracking import (
    BulkTransfer,
    MovementReport,
    ReassignmentReport,
    TrackableReport,
    TrackedDevice,
    analyze_movement,
    build_tracked_devices,
    infer_reassignment_policies,
    trackable_devices,
)
from .validation import ValidationReport, validate_dataset

__all__ = [
    "ConsistencyReport",
    "evaluate_link_result",
    "group_consistency",
    "DedupResult",
    "classify_unique_certificates",
    "Feature",
    "absence_rates",
    "extract",
    "linkable_value",
    "non_uniqueness_census",
    "LinkResult",
    "LinkedGroup",
    "group_by_feature",
    "link_on_feature",
    "DEFAULT_CONSISTENCY_THRESHOLD",
    "FeatureEvaluation",
    "LifetimeImprovement",
    "PipelineResult",
    "evaluate_all_features",
    "iterative_link",
    "lifetime_improvement",
    "BulkTransfer",
    "MovementReport",
    "ReassignmentReport",
    "TrackableReport",
    "TrackedDevice",
    "analyze_movement",
    "build_tracked_devices",
    "infer_reassignment_policies",
    "trackable_devices",
    "ValidationReport",
    "validate_dataset",
]
