"""§6.4.1 — Evaluating linked groups by location consistency.

Without ground truth, the paper scores a linked group by how consistently
its member certificates were advertised from the same place: the same IP
address (strictest), the same /24, or the same AS.  A group's consistency
at a level is the fraction of its observation scans on which the group's
most common location at that level appears — the worked PK2 example of
§6.4.1 (IP 0.5, /24 0.75, AS 1.0) is reproduced in the test suite.

AS lookups are day-aware (``as_of(ip, day)``) because the paper replays
historic RouteViews snapshots.

:func:`group_consistency` is the single-level reference implementation
(one walk per level, one AS lookup per observation).  The aggregate
scorer :func:`evaluate_link_result` instead uses the fused kernel
(:func:`repro.core.kernels.fused_group_levels`): each member
certificate's per-scan locations are walked once and cached in a
:class:`~repro.core.kernels.ConsistencyCache` (shared across groups and
features), group scores merge the cached counters, and AS lookups are
memoized per distinct ``(ip, routing epoch)``.  ``REPRO_LINK_PARITY=1``
re-scores every group through the reference path and asserts
bitwise-identical levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..net.ip import slash16, slash24
from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from .features import link_parity_enabled
from .kernels import ConsistencyCache, fused_group_levels
from .linking import LinkedGroup, LinkResult

__all__ = [
    "ASLookup",
    "group_consistency",
    "ConsistencyReport",
    "evaluate_link_result",
]

#: (ip, day) → origin AS (None when unrouted).
ASLookup = Callable[[int, int], Optional[int]]


def _location_per_scan(
    dataset: ScanDataset,
    fingerprints: Sequence[bytes],
    level: str,
    as_of: Optional[ASLookup],
) -> dict[int, set]:
    """scan index → set of locations (at the chosen level) of group members."""
    locations: dict[int, set] = {}
    for fingerprint in fingerprints:
        for scan_idx, ip in dataset.appearances(fingerprint):
            if level == "ip":
                location = ip
            elif level == "/24":
                location = slash24(ip)
            elif level == "/16":
                # §8: nearly half of real IP address changes land in a
                # different /16, so this level sits between /24 and AS.
                location = slash16(ip)
            elif level == "as":
                assert as_of is not None, "AS-level consistency needs a lookup"
                location = as_of(ip, dataset.scans[scan_idx].day)
            else:
                raise ValueError(f"unknown consistency level {level!r}")
            locations.setdefault(scan_idx, set()).add(location)
    return locations


def group_consistency(
    dataset: ScanDataset,
    group: LinkedGroup | Sequence[bytes],
    level: str = "ip",
    as_of: Optional[ASLookup] = None,
) -> float:
    """Consistency of one group at one level.

    Counts, over the scans in which any member certificate was observed,
    the share of scans covering the group's most common location.
    """
    fingerprints = (
        group.fingerprints if isinstance(group, LinkedGroup) else tuple(group)
    )
    per_scan = _location_per_scan(dataset, fingerprints, level, as_of)
    if not per_scan:
        return 0.0
    counts: dict = {}
    for locations in per_scan.values():
        for location in locations:
            counts[location] = counts.get(location, 0) + 1
    return max(counts.values()) / len(per_scan)


@dataclass(frozen=True)
class ConsistencyReport:
    """Aggregate consistency of one field's linking (Table 6, bottom rows)."""

    feature_name: str
    total_linked: int
    ip_level: float
    slash24_level: float
    as_level: float


def _naive_evaluate_link_result(
    dataset: ScanDataset,
    result: LinkResult,
    as_of: ASLookup,
) -> ConsistencyReport:
    """The pre-kernel scorer (one walk and one AS lookup per level), kept
    as the parity/bench reference."""
    total = 0
    sums = {"ip": 0.0, "/24": 0.0, "as": 0.0}
    for group in result.groups:
        weight = len(group)
        total += weight
        for level in sums:
            sums[level] += weight * group_consistency(dataset, group, level, as_of)
    if total == 0:
        return ConsistencyReport(result.feature.value, 0, 0.0, 0.0, 0.0)
    return ConsistencyReport(
        feature_name=result.feature.value,
        total_linked=total,
        ip_level=sums["ip"] / total,
        slash24_level=sums["/24"] / total,
        as_level=sums["as"] / total,
    )


def evaluate_link_result(
    dataset: ScanDataset,
    result: LinkResult,
    as_of: ASLookup,
    cache: Optional[ConsistencyCache] = None,
) -> ConsistencyReport:
    """Certificate-weighted average consistency across a field's groups.

    ``cache`` is the fused kernel's :class:`ConsistencyCache` (memoized
    AS lookups plus per-certificate location counters); pass one instance
    across calls to share the work between features (the pipeline does).
    """
    if cache is None:
        cache = ConsistencyCache()
    total = 0
    sums = {"ip": 0.0, "/24": 0.0, "as": 0.0}
    for group in result.groups:
        weight = len(group)
        total += weight
        ip_level, s24_level, as_level = fused_group_levels(
            dataset, group.fingerprints, as_of, cache
        )
        if link_parity_enabled():
            reference = (
                group_consistency(dataset, group, "ip", as_of),
                group_consistency(dataset, group, "/24", as_of),
                group_consistency(dataset, group, "as", as_of),
            )
            assert (ip_level, s24_level, as_level) == reference, (
                f"consistency parity failure on {result.feature}"
            )
        sums["ip"] += weight * ip_level
        sums["/24"] += weight * s24_level
        sums["as"] += weight * as_level
    if obs.enabled():
        obs.inc("consistency.groups_scored", len(result.groups))
        obs.gauge("kernels.as_memo_entries", len(cache.as_memo))
        obs.gauge("kernels.location_cache_entries", len(cache.locations))
    if total == 0:
        return ConsistencyReport(result.feature.value, 0, 0.0, 0.0, 0.0)
    return ConsistencyReport(
        feature_name=result.feature.value,
        total_linked=total,
        ip_level=sums["ip"] / total,
        slash24_level=sums["/24"] / total,
        as_level=sums["as"] / total,
    )
