"""§6.2 — Scan duplicates and the two-address uniqueness rule.

Scans take hours and probe addresses in random order, so a device that
changes address mid-scan can legitimately appear at two addresses in one
scan.  Three or more addresses in one scan, however, almost certainly means
the certificate is shared across devices (dynamic leases last days, §6.2).

The rule, verbatim from the paper:

* a certificate seen at **no more than two** addresses in *every* scan is
  declared unique to one device;
* seen at more than two addresses in *any* scan → non-unique;
* **exception** — seen at *exactly two* addresses in *every* scan: since
  probe order re-randomizes per scan, a mid-scan mover would sometimes be
  caught once; a constant two strongly suggests two devices, so the
  certificate is declared non-unique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..scanner.dataset import ScanDataset

__all__ = ["DedupResult", "classify_unique_certificates"]


@dataclass(frozen=True)
class DedupResult:
    """Partition of certificates into device-unique and shared."""

    unique: frozenset[bytes]
    non_unique: frozenset[bytes]

    @property
    def excluded_fraction(self) -> float:
        """Share of certificates the linking stage must drop (paper: 1.6 %)."""
        total = len(self.unique) + len(self.non_unique)
        return len(self.non_unique) / total if total else 0.0


def classify_unique_certificates(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    max_ips_per_scan: int = 2,
) -> DedupResult:
    """Apply the §6.2 uniqueness rule.

    ``max_ips_per_scan`` is the paper's threshold of two; the ablation
    benchmark sweeps it.
    """
    unique: set[bytes] = set()
    non_unique: set[bytes] = set()
    for fingerprint in fingerprints:
        by_scan = dataset.ips_by_scan(fingerprint)
        sizes = [len(ips) for ips in by_scan.values()]
        if max(sizes) > max_ips_per_scan:
            non_unique.add(fingerprint)
        elif (
            max_ips_per_scan >= 2
            and len(sizes) > 1
            and all(size == max_ips_per_scan for size in sizes)
        ):
            # The every-scan-exactly-two exception.
            non_unique.add(fingerprint)
        else:
            unique.add(fingerprint)
    return DedupResult(unique=frozenset(unique), non_unique=frozenset(non_unique))
