"""§6.2 — Scan duplicates and the two-address uniqueness rule.

Scans take hours and probe addresses in random order, so a device that
changes address mid-scan can legitimately appear at two addresses in one
scan.  Three or more addresses in one scan, however, almost certainly means
the certificate is shared across devices (dynamic leases last days, §6.2).

The rule, verbatim from the paper:

* a certificate seen at **no more than two** addresses in *every* scan is
  declared unique to one device;
* seen at more than two addresses in *any* scan → non-unique;
* **exception** — seen at *exactly two* addresses in *every* scan: since
  probe order re-randomizes per scan, a mid-scan mover would sometimes be
  caught once; a constant two strongly suggests two devices, so the
  certificate is declared non-unique.

A certificate with **zero** observations (present in the certificate
table but never seen by any scan) is classified unique: it was never
multi-homed, so there is no evidence of sharing.

The classifier reads the per-certificate extremes precomputed by the
``dataset.intervals`` kernel (one CSR sweep for the whole corpus) instead
of rebuilding a dict-of-sets per fingerprint; the §6.2 predicate only
needs the max/min distinct-address counts and the distinct-scan count.
``REPRO_LINK_PARITY=1`` re-runs the naive per-fingerprint path and
asserts an identical partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from .features import link_parity_enabled

__all__ = ["DedupResult", "classify_unique_certificates"]


@dataclass(frozen=True)
class DedupResult:
    """Partition of certificates into device-unique and shared."""

    unique: frozenset[bytes]
    non_unique: frozenset[bytes]

    @property
    def excluded_fraction(self) -> float:
        """Share of certificates the linking stage must drop (paper: 1.6 %)."""
        total = len(self.unique) + len(self.non_unique)
        return len(self.non_unique) / total if total else 0.0


def _naive_classify(
    dataset: ScanDataset,
    fingerprints: list[bytes],
    max_ips_per_scan: int,
) -> DedupResult:
    """The pre-kernel path: a dict-of-sets walk per fingerprint."""
    unique: set[bytes] = set()
    non_unique: set[bytes] = set()
    for fingerprint in fingerprints:
        by_scan = dataset.ips_by_scan(fingerprint)
        sizes = [len(ips) for ips in by_scan.values()]
        if not sizes:
            unique.add(fingerprint)
        elif max(sizes) > max_ips_per_scan:
            non_unique.add(fingerprint)
        elif (
            max_ips_per_scan >= 2
            and len(sizes) > 1
            and all(size == max_ips_per_scan for size in sizes)
        ):
            # The every-scan-exactly-two exception.
            non_unique.add(fingerprint)
        else:
            unique.add(fingerprint)
    return DedupResult(unique=frozenset(unique), non_unique=frozenset(non_unique))


def classify_unique_certificates(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    max_ips_per_scan: int = 2,
) -> DedupResult:
    """Apply the §6.2 uniqueness rule.

    ``max_ips_per_scan`` is the paper's threshold of two; the ablation
    benchmark sweeps it.
    """
    fingerprints = list(fingerprints)
    cert_ids = dataset.columns.fingerprint_ids
    spans = dataset.intervals
    n_scans, max_ips, min_ips = spans.n_scans, spans.max_ips, spans.min_ips
    unique: set[bytes] = set()
    non_unique: set[bytes] = set()
    for fingerprint in fingerprints:
        cert_id = cert_ids.get(fingerprint)
        if cert_id is None or n_scans[cert_id] == 0:
            # Never observed: no multi-homing evidence, keep it.
            unique.add(fingerprint)
        elif max_ips[cert_id] > max_ips_per_scan:
            non_unique.add(fingerprint)
        elif (
            max_ips_per_scan >= 2
            and n_scans[cert_id] > 1
            and max_ips[cert_id] == max_ips_per_scan
            and min_ips[cert_id] == max_ips_per_scan
        ):
            # The every-scan-exactly-two exception.
            non_unique.add(fingerprint)
        else:
            unique.add(fingerprint)
    result = DedupResult(unique=frozenset(unique), non_unique=frozenset(non_unique))
    obs.inc("dedup.certs_considered", len(fingerprints))
    obs.inc("dedup.certs_unique", len(unique))
    obs.inc("dedup.certs_collapsed", len(non_unique))
    if link_parity_enabled():
        naive = _naive_classify(dataset, fingerprints, max_ips_per_scan)
        assert result == naive, "dedup parity failure"
    return result
