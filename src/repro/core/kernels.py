"""Columnar kernels for the §6 linking pipeline.

PR 1 made the *corpus* columnar; the linking stages still consumed it
row-at-a-time — every Table 6 pass re-materialized each certificate via
``dataset.certificate(fp)`` and re-extracted its fields, and consistency
scoring walked each group's appearances once per location level with an
unmemoized AS lookup per observation.  This module is the array-native
replacement:

* :class:`FeatureMatrix` — all ten §6.3 feature values extracted **once**
  per certificate into interned value-id columns (``-1`` = absent), with a
  parallel linkable view that drops IPv4-literal Common Names (§6.4.1).
  Cached on the dataset (``dataset.feature_matrix``) so it ships to
  process-pool workers once, with the pickled dataset.
* :class:`ConsistencyCache` + :func:`fused_group_levels` /
  :func:`fused_group_consistency` — each certificate's per-scan location
  sets (ip, /24, AS) and per-location scan counts are computed in a
  **single walk** of its observations (read straight from the CSR index)
  and cached, so a certificate scored by several fields pays the walk
  once; group scores then merge the cached per-certificate counters,
  touching each member's observations zero times.  AS lookups go through
  a memoized ``(ip, day) → ASN`` cache which keys on the routing *epoch*
  (``RoutingHistory.epoch_of``) when the lookup exposes one, collapsing
  every scan inside one routing regime to a single RouteViews-style
  lookup per address.

The per-certificate (first, last) scan intervals and per-scan address
extremes consumed by dedup, the overlap rule, and the lifetime statistics
live in :class:`repro.scanner.columns.CertIntervals`
(``dataset.intervals``), the third kernel of the set.

Every consumer guards the kernel path with the ``REPRO_LINK_PARITY=1``
cross-check (see :mod:`repro.core.features`): outputs are bitwise-identical
to the pre-kernel row path.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence

from ..obs import runtime as obs
from ..x509.certificate import Certificate
from .features import Feature, dropped_for_linking

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scanner.dataset import ScanDataset
    from .consistency import ASLookup

__all__ = [
    "FeatureMatrix",
    "ConsistencyCache",
    "fused_group_levels",
    "fused_group_consistency",
]

#: Sentinel distinct from None (a legitimate cached ASN is None = unrouted).
_MISSING = object()


class FeatureMatrix:
    """Interned feature values of every certificate, one column per field.

    Layout (one entry per certificate, in ``certificates`` dict order):

    * ``rows``              — fingerprint → row index;
    * ``fingerprints``      — row index → fingerprint;
    * ``values[feature]``   — value id → raw feature value;
    * ``raw_ids[feature]``  — row → value id of :func:`~.features.extract`
      (``-1`` when the certificate lacks the feature);
    * ``linkable_ids[feature]`` — row → value id as the linking pipeline
      consumes it (:func:`~.features.linkable_value`); aliases
      ``raw_ids`` for every field except Common Name, where IPv4-literal
      names are additionally ``-1``.

    Equal values intern to equal ids, so grouping and census counting
    become integer-array operations; ``values`` maps ids back when a
    result needs the original (hashable) value.
    """

    __slots__ = ("rows", "fingerprints", "values", "raw_ids", "linkable_ids")

    def __init__(self) -> None:
        self.rows: Dict[bytes, int] = {}
        self.fingerprints: List[bytes] = []
        self.values: Dict[Feature, List[Hashable]] = {f: [] for f in Feature}
        self.raw_ids: Dict[Feature, array] = {}
        self.linkable_ids: Dict[Feature, array] = {}

    @classmethod
    def from_certificates(
        cls, certificates: Dict[bytes, Certificate], workers: int = 1
    ) -> "FeatureMatrix":
        """Extract all ten features of every certificate in one pass.

        ``workers > 1`` shards the attribute-walk extraction (the
        expensive part) over a process pool; the value interning runs in
        the parent over the extracted tuples in certificate order, so
        ids — and therefore the whole matrix — are bitwise-identical to
        serial.
        """
        matrix = cls()
        n = len(certificates)
        matrix.fingerprints = list(certificates)
        matrix.rows = {fp: row for row, fp in enumerate(matrix.fingerprints)}
        features = tuple(Feature)
        raw = {feature: array("i", bytes(4 * n)) for feature in features}
        value_ids: Dict[Feature, Dict[Hashable, int]] = {
            feature: {} for feature in features
        }
        cn_linkable = array("i", bytes(4 * n))
        if workers > 1 and n > 1:
            extracted = _extract_sharded(list(certificates.values()), workers)
        else:
            extracted = (_extract_all(cert) for cert in certificates.values())
        _intern_extracted(matrix, extracted, features, raw, cn_linkable,
                          value_ids)
        matrix.raw_ids = raw
        matrix.linkable_ids = dict(raw)
        matrix.linkable_ids[Feature.COMMON_NAME] = cn_linkable
        return matrix

    @classmethod
    def extended(
        cls,
        base: "FeatureMatrix",
        certificates: Dict[bytes, Certificate],
        workers: int = 1,
    ) -> "FeatureMatrix":
        """Rebuild the matrix over a grown certificate table, extracting
        only the certificates the base has no row for.

        An append can interleave newly observed certificates *ahead* of
        the base's unobserved tail in the grown table order, and value
        ids are assigned on first appearance in row order — so only the
        rows from the first divergence onward are re-interned.  The rows
        *before* it — the base's observed prefix, which an append never
        reorders — interned identically in the base build: their id
        columns are copied wholesale, and each value table is seeded
        with the prefix of the base's (ids are dense in first-appearance
        order, so the values those rows introduced are exactly
        ``base.values[feature][:max_prefix_id + 1]``).  The expensive
        part — DER parsing and the per-certificate attribute walk — runs
        only over the appended certificates; re-interned base rows
        recover their extracted tuples exactly from the base matrix
        (``values[feature][raw_ids[feature][row]]`` inverts the
        interning).  Bitwise-identical to :meth:`from_certificates` over
        the grown table.
        """
        fingerprints = list(certificates)
        base_rows = base.rows
        base_fps = base.fingerprints
        features = tuple(Feature)
        limit = min(len(fingerprints), len(base_fps))
        prefix = limit
        for row in range(limit):
            if fingerprints[row] != base_fps[row]:
                prefix = row
                break
        new_fps = [
            fp for fp in fingerprints[prefix:] if fp not in base_rows
        ]
        new_certs = [certificates[fp] for fp in new_fps]
        if workers > 1 and len(new_certs) > 1:
            extracted = _extract_sharded(new_certs, workers)
        else:
            extracted = [_extract_all(cert) for cert in new_certs]
        new_values = dict(zip(new_fps, extracted))
        base_values = base.values
        base_raw = base.raw_ids

        def recovered(fingerprint: bytes) -> tuple:
            row = base_rows.get(fingerprint)
            if row is None:
                return new_values[fingerprint]
            return tuple(
                base_values[feature][base_raw[feature][row]]
                if base_raw[feature][row] >= 0 else None
                for feature in features
            )

        matrix = cls()
        n = len(fingerprints)
        matrix.fingerprints = fingerprints
        matrix.rows = {fp: row for row, fp in enumerate(fingerprints)}
        raw = {feature: array("i", bytes(4 * n)) for feature in features}
        value_ids: Dict[Feature, Dict[Hashable, int]] = {
            feature: {} for feature in features
        }
        cn_linkable = array("i", bytes(4 * n))
        if prefix:
            for feature in features:
                head = base_raw[feature][:prefix]
                seeded_count = max(head, default=-1) + 1
                seeded = base_values[feature][:seeded_count]
                matrix.values[feature] = seeded
                value_ids[feature] = dict(zip(seeded, range(seeded_count)))
                raw[feature][:prefix] = head
            cn_linkable[:prefix] = \
                base.linkable_ids[Feature.COMMON_NAME][:prefix]
        _intern_extracted(
            matrix, (recovered(fp) for fp in fingerprints[prefix:]),
            features, raw, cn_linkable, value_ids, start_row=prefix,
        )
        matrix.raw_ids = raw
        matrix.linkable_ids = dict(raw)
        matrix.linkable_ids[Feature.COMMON_NAME] = cn_linkable
        return matrix

    def __len__(self) -> int:
        return len(self.fingerprints)

    def raw_value(self, feature: Feature, fingerprint: bytes) -> Optional[Hashable]:
        """The :func:`~.features.extract` value, resolved through the matrix."""
        value_id = self.raw_ids[feature][self.rows[fingerprint]]
        return self.values[feature][value_id] if value_id >= 0 else None

    def linkable_id(self, feature: Feature, fingerprint: bytes) -> int:
        """The interned linkable value id (-1 = absent or dropped)."""
        return self.linkable_ids[feature][self.rows[fingerprint]]


def _intern_extracted(
    matrix: "FeatureMatrix",
    extracted,
    features: tuple,
    raw: Dict[Feature, array],
    cn_linkable: array,
    value_ids: Dict[Feature, Dict[Hashable, int]],
    start_row: int = 0,
) -> None:
    """Intern extracted feature tuples into the id columns, in row order.

    Shared by the cold build and the delta extension: value ids are
    assigned on first appearance in row order, so resuming the loop at
    ``start_row`` over tables seeded from a prefix build reproduces the
    cold build's interning exactly.
    """
    for row, values in enumerate(extracted, start_row):
        for feature, value in zip(features, values):
            if value is None:
                raw[feature][row] = -1
                if feature is Feature.COMMON_NAME:
                    cn_linkable[row] = -1
                continue
            ids = value_ids[feature]
            value_id = ids.get(value)
            if value_id is None:
                value_id = ids[value] = len(matrix.values[feature])
                matrix.values[feature].append(value)
            raw[feature][row] = value_id
            if feature is Feature.COMMON_NAME:
                cn_linkable[row] = (
                    -1 if dropped_for_linking(feature, value) else value_id
                )


def _init_matrix_worker(obs_enabled: bool) -> None:
    obs.install_worker(obs_enabled)


def _extract_chunk(
    task: "tuple[int, List[Certificate]]",
) -> "tuple[list[tuple], Optional[dict]]":
    shard_index, certs = task
    mark = obs.task_mark()
    with obs.span(f"kernels/matrix_shard={shard_index}"):
        rows = [_extract_all(cert) for cert in certs]
    return rows, obs.task_delta(mark)


def _extract_sharded(certs: "List[Certificate]", workers: int) -> "list[tuple]":
    """Fan the per-certificate extraction out, preserving corpus order."""
    n_chunks = min(workers, len(certs))
    bounds = [round(i * len(certs) / n_chunks) for i in range(n_chunks + 1)]
    tasks = [
        (shard, certs[bounds[shard]:bounds[shard + 1]])
        for shard in range(n_chunks)
        if bounds[shard] < bounds[shard + 1]
    ]
    extracted: "list[tuple]" = []
    with ProcessPoolExecutor(
        max_workers=len(tasks),
        initializer=_init_matrix_worker,
        initargs=(obs.enabled(),),
    ) as pool:
        for rows, delta in pool.map(_extract_chunk, tasks):
            extracted.extend(rows)
            obs.absorb(delta)
    return extracted


def _extract_all(cert: Certificate) -> tuple:
    """All ten feature values of one certificate, in ``Feature`` order.

    The fused form of ten :func:`~.features.extract` calls — one attribute
    walk per certificate instead of one per (certificate, feature).  Must
    stay value-identical to ``extract``; the kernel parity suite
    round-trips every matrix entry against it.
    """
    extensions = cert.extensions
    return (
        cert.not_before_stamp,                       # NOT_BEFORE
        cert.subject_cn,                             # COMMON_NAME
        cert.not_after_stamp,                        # NOT_AFTER
        cert.public_key,                             # PUBLIC_KEY
        extensions.subject_alt_names or None,        # SAN_LIST
        (cert.issuer, cert.serial),                  # ISSUER_SERIAL
        extensions.crl_uris or None,                 # CRL
        extensions.ca_issuer_uris or None,           # AIA
        extensions.ocsp_uris or None,                # OCSP
        extensions.policy_oids or None,              # OID
    )


class ConsistencyCache:
    """Per-process memo for consistency scoring.

    Holds everything the fused scorer reuses across groups and features:

    * ``as_memo`` — ``(ip, day-key) → ASN``.  When the lookup is bound to
      an object exposing ``epoch_of(day)`` (:class:`~repro.net.bgp.
      RoutingHistory`), the day-key is the routing epoch, so all scans
      within one routing regime share one entry per address.
    * ``locations`` — ``cert_id →`` that certificate's per-scan location
      sets and per-location scan counts (see :func:`_cert_locations`),
      built once per certificate no matter how many fields link it.

    One cache serves one (dataset, lookup) pair; binding a different
    lookup resets it.  Sharing a cache never changes results — every
    entry is a pure function of the corpus and the lookup.
    """

    __slots__ = ("as_memo", "locations", "_scan_days", "_memo_days", "_as_of")

    def __init__(self) -> None:
        self.as_memo: dict = {}
        self.locations: dict[int, tuple] = {}
        self._scan_days: Optional[list[int]] = None
        self._memo_days: Optional[list[int]] = None
        self._as_of = _MISSING

    def bind(
        self, dataset: "ScanDataset", as_of: Optional["ASLookup"]
    ) -> tuple[list[int], list[int]]:
        """(scan index → day, scan index → memo day-key) for ``as_of``."""
        if self._scan_days is None:
            self._scan_days = [scan.day for scan in dataset.scans]
        if as_of is not self._as_of:
            if self._as_of is not _MISSING:
                self.as_memo.clear()
                self.locations.clear()
            self._as_of = as_of
            epoch_of = getattr(getattr(as_of, "__self__", None), "epoch_of", None)
            if epoch_of is not None:
                self._memo_days = [epoch_of(day) for day in self._scan_days]
            else:
                self._memo_days = self._scan_days
        return self._scan_days, self._memo_days


def _cert_locations(
    index,
    cert_id: int,
    as_of: Optional["ASLookup"],
    scan_days: list[int],
    memo_days: list[int],
    as_memo: dict,
) -> tuple:
    """One certificate's per-scan locations, in a single observation walk.

    Returns ``(scan_idxs, positions, run_starts, ip_counts, s24_counts,
    as_counts)``: the distinct scan indexes (sorted), the certificate's
    observation positions with the offset where each scan's contiguous
    run begins, and per-level ``location → number of scans containing
    it`` counters (``as_counts`` is None when ``as_of`` is).  Counters
    are all a group score needs on scans covered by one member; the runs
    let :func:`_member_scan_set` rebuild a single scan's location set for
    the shared-scan correction without storing per-scan sets up front —
    most runs are a single observation, so the walk allocates nothing.
    """
    columns = index.columns
    scan_idx_col = columns.scan_idx
    ip_col = columns.ip
    want_as = as_of is not None
    positions = index.positions(cert_id)
    scan_idxs: list[int] = []
    run_starts: list[int] = []
    ip_counts: dict = {}
    s24_counts: dict = {}
    as_counts: Optional[dict] = {} if want_as else None
    run_scan = -1
    run_ips: Optional[set] = None
    run_s24: Optional[set] = None
    run_as: Optional[set] = None
    first_ip = 0
    first_asn = None
    for offset, pos in enumerate(positions):
        scan = scan_idx_col[pos]
        ip = ip_col[pos]
        if scan != run_scan:
            run_scan = scan
            scan_idxs.append(scan)
            run_starts.append(offset)
            run_ips = None
            first_ip = ip
            ip_counts[ip] = ip_counts.get(ip, 0) + 1
            s24 = ip & 0xFFFFFF00
            s24_counts[s24] = s24_counts.get(s24, 0) + 1
            if want_as:
                key = (ip, memo_days[scan])
                asn = as_memo.get(key, _MISSING)
                if asn is _MISSING:
                    asn = as_memo[key] = as_of(ip, scan_days[scan])
                first_asn = asn
                as_counts[asn] = as_counts.get(asn, 0) + 1
            continue
        # A multi-observation run: fall back to per-run dedup sets.
        if run_ips is None:
            run_ips = {first_ip}
            run_s24 = {first_ip & 0xFFFFFF00}
            if want_as:
                run_as = {first_asn}
        if ip in run_ips:
            continue
        run_ips.add(ip)
        ip_counts[ip] = ip_counts.get(ip, 0) + 1
        s24 = ip & 0xFFFFFF00
        if s24 not in run_s24:
            run_s24.add(s24)
            s24_counts[s24] = s24_counts.get(s24, 0) + 1
        if want_as:
            key = (ip, memo_days[scan])
            asn = as_memo.get(key, _MISSING)
            if asn is _MISSING:
                asn = as_memo[key] = as_of(ip, scan_days[scan])
            if asn not in run_as:
                run_as.add(asn)
                as_counts[asn] = as_counts.get(asn, 0) + 1
    return scan_idxs, positions, run_starts, ip_counts, s24_counts, as_counts


def _member_scan_set(
    ip_col,
    locs: tuple,
    row: int,
    level: int,
    as_of: Optional["ASLookup"],
    scan_days: list[int],
    memo_days: list[int],
    as_memo: dict,
) -> set:
    """One member's location set at one scan, rebuilt from its run."""
    scan_idxs, positions, run_starts = locs[0], locs[1], locs[2]
    start = run_starts[row]
    end = run_starts[row + 1] if row + 1 < len(run_starts) else len(positions)
    ips = {ip_col[positions[offset]] for offset in range(start, end)}
    if level == 0:
        return ips
    if level == 1:
        return {ip & 0xFFFFFF00 for ip in ips}
    scan = scan_idxs[row]
    asns = set()
    for ip in ips:
        key = (ip, memo_days[scan])
        asn = as_memo.get(key, _MISSING)
        if asn is _MISSING:
            asn = as_memo[key] = as_of(ip, scan_days[scan])
        asns.add(asn)
    return asns


def _group_locations(
    dataset: "ScanDataset",
    fingerprints: Sequence[bytes],
    as_of: Optional["ASLookup"],
    cache: ConsistencyCache,
) -> list[tuple]:
    """The cached location bundles of a group's observed members."""
    index = dataset.index
    fingerprint_ids = index.columns.fingerprint_ids
    scan_days, memo_days = cache.bind(dataset, as_of)
    locations = cache.locations
    members: list[tuple] = []
    hits = misses = 0
    for fingerprint in fingerprints:
        cert_id = fingerprint_ids.get(fingerprint)
        if cert_id is None:
            continue
        locs = locations.get(cert_id)
        if locs is None or (as_of is not None and locs[5] is None):
            misses += 1
            locs = locations[cert_id] = _cert_locations(
                index, cert_id, as_of, scan_days, memo_days, cache.as_memo
            )
        else:
            hits += 1
        members.append(locs)
    if hits:
        obs.inc("kernels.cache_hits", hits)
    if misses:
        obs.inc("kernels.cache_misses", misses)
    return members


def _merge_counts(members: list[tuple], slot: int) -> dict:
    """Sum the members' per-location scan counters at one level."""
    merged: dict = {}
    for locs in members:
        for location, count in locs[slot].items():
            merged[location] = merged.get(location, 0) + count
    return merged


def fused_group_levels(
    dataset: "ScanDataset",
    fingerprints: Sequence[bytes],
    as_of: Optional["ASLookup"],
    cache: Optional[ConsistencyCache] = None,
) -> tuple[float, float, float]:
    """(ip, /24, AS) consistency of one group from cached counters.

    Semantically identical to three calls of
    :func:`repro.core.consistency.group_consistency`, one per level: the
    score is ``max(location scan counts) / distinct scans``, both sides
    integers, so results are bitwise-identical.  Summed per-certificate
    counters count a location once per *member* on a scan several members
    cover; the reference (a union set per scan) counts it once — so on
    those scans each present member's contribution is retracted and the
    union's added back.  The AS level is 0.0 when ``as_of`` is None.
    """
    if cache is None:
        cache = ConsistencyCache()
    members = _group_locations(dataset, fingerprints, as_of, cache)
    if not members:
        return 0.0, 0.0, 0.0
    # Fast path: when member scan intervals are strictly disjoint (the
    # common outcome of the overlap rule), no scan is covered by two
    # members — counters sum with no correction and the distinct-scan
    # count is just the total of the members' own scan counts.
    ordered = sorted(members, key=lambda locs: locs[0][0])
    n_scans = 0
    previous_last = -1
    disjoint = True
    for locs in ordered:
        scan_idxs = locs[0]
        if scan_idxs[0] <= previous_last:
            disjoint = False
            break
        previous_last = scan_idxs[-1]
        n_scans += len(scan_idxs)
    if disjoint:
        levels = []
        for counts_slot in (3, 4, 5):
            if counts_slot == 5 and as_of is None:
                levels.append(0.0)
                continue
            levels.append(max(_merge_counts(members, counts_slot).values()) / n_scans)
        return tuple(levels)
    # scan index → (member locations, row) of every member covering it.
    scan_members: dict[int, list[tuple]] = {}
    for locs in members:
        for row, scan in enumerate(locs[0]):
            entries = scan_members.get(scan)
            if entries is None:
                scan_members[scan] = [(locs, row)]
            else:
                entries.append((locs, row))
    n_scans = len(scan_members)
    shared = [entries for entries in scan_members.values() if len(entries) > 1]
    scan_days, memo_days = cache.bind(dataset, as_of)
    ip_col = dataset.index.columns.ip
    levels = []
    for level, counts_slot in ((0, 3), (1, 4), (2, 5)):
        if level == 2 and as_of is None:
            levels.append(0.0)
            continue
        counts = _merge_counts(members, counts_slot)
        for entries in shared:
            present = [
                _member_scan_set(
                    ip_col, locs, row, level, as_of,
                    scan_days, memo_days, cache.as_memo,
                )
                for locs, row in entries
            ]
            for location_set in present:
                for location in location_set:
                    counts[location] -= 1
            for location in set().union(*present):
                counts[location] += 1
        levels.append(max(counts.values()) / n_scans)
    return tuple(levels)


def fused_group_consistency(
    dataset: "ScanDataset",
    fingerprints: Sequence[bytes],
    as_of: Optional["ASLookup"],
    cache: Optional[ConsistencyCache] = None,
) -> tuple[float, float, float, float]:
    """(ip, /24, /16, AS) consistency of one group in a single walk.

    The four-level variant of :func:`fused_group_levels` (the /16 level
    sits between /24 and AS in the §8 mobility analysis).  Per-scan /16
    sets are derived from each member's cached observation runs, so the
    group's observations are still walked only once.
    """
    if cache is None:
        cache = ConsistencyCache()
    ip_level, s24_level, as_level = fused_group_levels(
        dataset, fingerprints, as_of, cache
    )
    members = _group_locations(dataset, fingerprints, as_of, cache)
    scan_days, memo_days = cache.bind(dataset, as_of)
    ip_col = dataset.index.columns.ip
    per_scan_16: dict[int, set] = {}
    for locs in members:
        for row, scan in enumerate(locs[0]):
            existing = per_scan_16.get(scan)
            masked = {
                ip & 0xFFFF0000
                for ip in _member_scan_set(
                    ip_col, locs, row, 0, as_of,
                    scan_days, memo_days, cache.as_memo,
                )
            }
            per_scan_16[scan] = masked if existing is None else existing | masked
    if not per_scan_16:
        s16_level = 0.0
    else:
        counts: dict = {}
        for locations in per_scan_16.values():
            for location in locations:
                counts[location] = counts.get(location, 0) + 1
        s16_level = max(counts.values()) / len(per_scan_16)
    return ip_level, s24_level, s16_level, as_level
