"""§7 — Tracking end-user devices through their invalid certificates.

After linking, each linked group — and each unlinked certificate — is a
candidate *device*.  A device observed for more than a year is "trackable"
(§7.2), and tracking enables two applications:

* **movement** (§7.3): AS transitions per device, bulk transfers (many
  devices switching between the same AS pair between consecutive sightings
  — the Verizon→MCI prefix moves), and cross-country moves;
* **reassignment-policy inference** (§7.4 / Figure 11): per AS, the share
  of its tracked devices whose address never changed, and the ASes that
  reassign nearly every device between every scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..net.asn import ASRegistry
from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from ..stats.cdf import CDF
from .consistency import ASLookup
from .pipeline import PipelineResult

__all__ = [
    "TrackedDevice",
    "build_tracked_devices",
    "TrackableReport",
    "trackable_devices",
    "MovementReport",
    "BulkTransfer",
    "analyze_movement",
    "ReassignmentReport",
    "infer_reassignment_policies",
    "ASAssignmentStats",
    "summarize_as_assignment",
]

TRACKABLE_MIN_DAYS = 365


@dataclass(frozen=True)
class TrackedDevice:
    """One inferred device: its certificates and sighting history."""

    device_key: str
    fingerprints: tuple[bytes, ...]
    #: (scan index, day, ip) in scan order, one entry per (scan, ip).
    sightings: tuple[tuple[int, int, int], ...]

    @property
    def first_day(self) -> int:
        return self.sightings[0][1]

    @property
    def last_day(self) -> int:
        return self.sightings[-1][1]

    @property
    def span_days(self) -> int:
        """Inclusive observation span."""
        return self.last_day - self.first_day + 1

    def is_trackable(self, min_days: int = TRACKABLE_MIN_DAYS) -> bool:
        """Observed for longer than ``min_days`` (the paper uses a year)."""
        return self.span_days > min_days

    def as_path(self, as_of: ASLookup) -> list[tuple[int, Optional[int]]]:
        """(day, AS) per scan in which the device was seen.

        When a scan caught the device at two addresses (mid-scan move),
        the last one wins — it is the device's AS at the end of the scan.
        """
        per_scan: dict[int, tuple[int, Optional[int]]] = {}
        for scan_idx, day, ip in self.sightings:
            per_scan[scan_idx] = (day, as_of(ip, day))
        return [per_scan[idx] for idx in sorted(per_scan)]

    def ip_path(self) -> list[tuple[int, int]]:
        """(day, ip) per scan, last sighting of each scan winning."""
        per_scan: dict[int, tuple[int, int]] = {}
        for scan_idx, day, ip in self.sightings:
            per_scan[scan_idx] = (day, ip)
        return [per_scan[idx] for idx in sorted(per_scan)]


def build_tracked_devices(
    dataset: ScanDataset,
    pipeline: PipelineResult,
    fingerprints: Iterable[bytes],
) -> list[TrackedDevice]:
    """Materialize the device view: linked groups + unlinked singletons."""
    linked = pipeline.linked_fingerprints()
    devices: list[TrackedDevice] = []

    def sightings_of(fps: tuple[bytes, ...]) -> tuple[tuple[int, int, int], ...]:
        rows = []
        for fp in fps:
            for scan_idx, ip in dataset.appearances(fp):
                rows.append((scan_idx, dataset.scans[scan_idx].day, ip))
        return tuple(sorted(rows))

    for group in pipeline.groups:
        # Content-addressed key (the group's smallest fingerprint — the
        # roster tuple is sorted) so the same group gets the same key
        # regardless of which corpus partition produced it.
        devices.append(
            TrackedDevice(
                device_key=f"group:{group.fingerprints[0].hex()[:16]}",
                fingerprints=group.fingerprints,
                sightings=sightings_of(group.fingerprints),
            )
        )
    for fingerprint in fingerprints:
        if fingerprint in linked:
            continue
        devices.append(
            TrackedDevice(
                device_key=f"cert:{fingerprint.hex()[:16]}",
                fingerprints=(fingerprint,),
                sightings=sightings_of((fingerprint,)),
            )
        )
    obs.inc("tracking.devices_built", len(devices))
    return devices


@dataclass(frozen=True)
class TrackableReport:
    """§7.2: how many devices are observable for over a year."""

    trackable_without_linking: int
    trackable_with_linking: int

    @property
    def improvement_fraction(self) -> float:
        """Paper: linking adds 17.2 % more trackable devices."""
        base = self.trackable_without_linking
        return (self.trackable_with_linking - base) / base if base else 0.0


def trackable_devices(
    dataset: ScanDataset,
    devices: list[TrackedDevice],
    fingerprints: Iterable[bytes],
    min_days: int = TRACKABLE_MIN_DAYS,
) -> TrackableReport:
    """Count trackable devices with and without the linking methodology.

    Without linking, only devices that advertise one distinct certificate
    for over a year are trackable (the paper's 5.59M); with linking, a
    group's combined span counts (6.75M).
    """
    without = sum(
        1
        for fp in fingerprints
        if dataset.lifetime_days(fp) > min_days
    )
    with_linking = sum(1 for device in devices if device.is_trackable(min_days))
    return TrackableReport(
        trackable_without_linking=without,
        trackable_with_linking=with_linking,
    )


@dataclass(frozen=True)
class BulkTransfer:
    """Many devices moving between the same AS pair at the same time."""

    from_asn: int
    to_asn: int
    day: int
    device_count: int


@dataclass
class MovementReport:
    """§7.3's findings."""

    tracked_devices: int
    devices_changing_as: int
    total_transitions: int
    single_change_fraction: float
    max_changes: int
    bulk_transfers: list[BulkTransfer] = field(default_factory=list)
    country_moves: int = 0


def analyze_movement(
    devices: list[TrackedDevice],
    as_of: ASLookup,
    registry: Optional[ASRegistry] = None,
    bulk_threshold: int = 50,
    min_days: int = TRACKABLE_MIN_DAYS,
) -> MovementReport:
    """Mine AS transitions out of the tracked-device histories.

    ``bulk_threshold`` is the paper's ≥50-devices-per-transfer rule; scale
    it down with the population.
    """
    tracked = [device for device in devices if device.is_trackable(min_days)]
    changing = 0
    transitions = 0
    per_device_changes: list[int] = []
    transfer_counts: dict[tuple[int, int, int], int] = {}
    country_moves = 0

    for device in tracked:
        path = device.as_path(as_of)
        changes = 0
        for (prev_day, prev_as), (day, asn) in zip(path, path[1:]):
            if prev_as is None or asn is None or prev_as == asn:
                continue
            changes += 1
            key = (prev_as, asn, day)
            transfer_counts[key] = transfer_counts.get(key, 0) + 1
            if registry is not None:
                before = registry.get(prev_as)
                after = registry.get(asn)
                if (
                    before is not None
                    and after is not None
                    and before.country_at(prev_day) != after.country_at(day)
                ):
                    country_moves += 1
        if changes:
            changing += 1
            transitions += changes
            per_device_changes.append(changes)

    bulk = [
        BulkTransfer(from_asn=f, to_asn=t, day=d, device_count=count)
        for (f, t, d), count in transfer_counts.items()
        if count >= bulk_threshold
    ]
    bulk.sort(key=lambda transfer: transfer.device_count, reverse=True)
    single = (
        sum(1 for changes in per_device_changes if changes == 1) / changing
        if changing
        else 0.0
    )
    return MovementReport(
        tracked_devices=len(tracked),
        devices_changing_as=changing,
        total_transitions=transitions,
        single_change_fraction=single,
        max_changes=max(per_device_changes, default=0),
        bulk_transfers=bulk,
        country_moves=country_moves,
    )


@dataclass(frozen=True)
class ReassignmentReport:
    """§7.4 / Figure 11."""

    static_fraction_by_as: dict[int, float]
    cdf: CDF
    #: ASes reassigning ≥75 % of their devices between every scan pair.
    highly_dynamic_ases: tuple[int, ...]

    def fraction_of_ases_mostly_static(self, cutoff: float = 0.90) -> float:
        """Share of ASes with ≥``cutoff`` static devices (paper: 56.3 %)."""
        values = list(self.static_fraction_by_as.values())
        return sum(1 for v in values if v >= cutoff) / len(values) if values else 0.0


def _device_assignment(
    device: TrackedDevice, as_of: ASLookup
) -> Optional[tuple[int, bool, float]]:
    """(home AS, statically assigned, flip rate) for one tracked device.

    The home AS is the one hosting the device most often (ties broken by
    first appearance); a device is static when it kept one address across
    its history; the flip rate is the share of consecutive scan pairs
    between which the address changed.  ``None`` when no sighting
    resolves to an AS.
    """
    path = device.ip_path()
    as_counts: dict[int, int] = {}
    for day, ip in path:
        asn = as_of(ip, day)
        if asn is not None:
            as_counts[asn] = as_counts.get(asn, 0) + 1
    if not as_counts:
        return None
    home_as = max(as_counts, key=as_counts.get)
    ips = [ip for _, ip in path]
    static = len(set(ips)) == 1
    flips = sum(1 for a, b in zip(ips, ips[1:]) if a != b)
    flip_rate = flips / (len(ips) - 1) if len(ips) > 1 else 0.0
    return home_as, static, flip_rate


def infer_reassignment_policies(
    devices: list[TrackedDevice],
    as_of: ASLookup,
    min_devices_per_as: int = 10,
    min_days: int = TRACKABLE_MIN_DAYS,
) -> ReassignmentReport:
    """Figure 11: per-AS static-assignment fractions.

    A device counts as statically assigned when it kept one address across
    its entire (≥1-year) observation history; devices are attributed to
    the AS hosting them most often.
    """
    per_as: dict[int, list[tuple[bool, float]]] = {}
    for device in devices:
        if not device.is_trackable(min_days):
            continue
        assignment = _device_assignment(device, as_of)
        if assignment is None:
            continue
        home_as, static, flip_rate = assignment
        per_as.setdefault(home_as, []).append((static, flip_rate))

    static_fraction: dict[int, float] = {}
    highly_dynamic: list[int] = []
    for asn, rows in per_as.items():
        if len(rows) < min_devices_per_as:
            continue
        static_fraction[asn] = sum(1 for static, _ in rows if static) / len(rows)
        mean_flip_rate = sum(rate for _, rate in rows) / len(rows)
        dynamic_share = sum(1 for _, rate in rows if rate >= 0.999) / len(rows)
        if dynamic_share >= 0.75 or mean_flip_rate >= 0.95:
            highly_dynamic.append(asn)

    if not static_fraction:
        raise ValueError("no AS reached the minimum tracked-device count")
    return ReassignmentReport(
        static_fraction_by_as=static_fraction,
        cdf=CDF.of(static_fraction.values()),
        highly_dynamic_ases=tuple(sorted(highly_dynamic)),
    )


@dataclass(frozen=True)
class ASAssignmentStats:
    """§7.4 assignment-policy counts for one AS.

    Pure integer counts so partial tallies from disjoint device
    partitions merge exactly (field-wise sums) — the sharded serve tier
    relies on this.
    """

    asn: int
    n_devices: int
    n_static: int
    #: Devices whose address changed between (essentially) every scan
    #: pair — per-device flip rate ≥ 0.999.
    n_fully_dynamic: int

    @property
    def static_fraction(self) -> float:
        return self.n_static / self.n_devices if self.n_devices else 0.0

    @property
    def dynamic_share(self) -> float:
        return self.n_fully_dynamic / self.n_devices if self.n_devices else 0.0

    def is_mostly_static(self, cutoff: float = 0.90) -> bool:
        """≥``cutoff`` of the AS's devices kept one address (paper §7.4)."""
        return self.n_devices > 0 and self.static_fraction >= cutoff

    @property
    def is_highly_dynamic(self) -> bool:
        """Reassigns nearly every device between every scan pair."""
        return self.n_devices > 0 and self.dynamic_share >= 0.75


def summarize_as_assignment(
    devices: list[TrackedDevice],
    as_of: ASLookup,
    min_days: int = TRACKABLE_MIN_DAYS,
) -> dict[int, ASAssignmentStats]:
    """Per-AS assignment counts over every trackable device.

    Unlike :func:`infer_reassignment_policies` this applies no minimum
    device count — thresholds belong to the caller, so counts computed
    over shards of a partitioned corpus can be summed first and
    thresholded once.
    """
    counts: dict[int, list[int]] = {}
    for device in devices:
        if not device.is_trackable(min_days):
            continue
        assignment = _device_assignment(device, as_of)
        if assignment is None:
            continue
        home_as, static, flip_rate = assignment
        row = counts.setdefault(home_as, [0, 0, 0])
        row[0] += 1
        if static:
            row[1] += 1
        if flip_rate >= 0.999:
            row[2] += 1
    return {
        asn: ASAssignmentStats(
            asn=asn, n_devices=row[0], n_static=row[1], n_fully_dynamic=row[2]
        )
        for asn, row in counts.items()
    }
