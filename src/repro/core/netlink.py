"""Network-fingerprint-augmented linking — the paper's §6.3 future work.

The paper: *"We would ideally like to link using both features of the
certificate (e.g., the Common Name) and features that can be observed from
the network connection used to collect the certificate (e.g., the initial
TCP window size).  Unfortunately, the certificate scan data contains only
the certificates themselves; thus ... we focus on using only features from
certificates and leave other features to future work."*

This module implements that future work over corpora collected with
``collect_handshakes=True``: every certificate carries a *stack
fingerprint* (TLS version ceiling, initial TCP window, initial TTL — all
firmware constants, per Greenwald & Thomas able to identify the device
*family* though not the individual device), and linked groups are refined
by partitioning them per fingerprint.  Cross-vendor coincidences — two
unrelated devices that happen to share a Not Before stamp — end up in
different partitions and can no longer be linked together, while the
plain methodology's lifetime-overlap safety net stays fully in force.

Also here: the §5.2/footnote-10 PFS analysis (Lancom's shared-key devices
negotiate non-forward-secure ciphers, so one leaked key decrypts the
fleet's historic traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..scanner.dataset import ScanDataset
from ..tls.ciphers import suite
from .features import Feature
from .linking import LinkResult, LinkedGroup, link_on_feature

__all__ = [
    "stack_fingerprints",
    "link_on_feature_with_fingerprint",
    "PFSReport",
    "pfs_support",
]


def stack_fingerprints(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> dict[bytes, Optional[tuple]]:
    """certificate → stack fingerprint, in one pass over the corpus.

    A certificate observed without handshake data maps to None; if a
    certificate was (anomalously) served by stacks with different traits,
    the first fingerprint wins — real analyses would flag these.
    """
    wanted = set(fingerprints)
    result: dict[bytes, Optional[tuple]] = {}
    for scan in dataset.scans:
        for obs in scan.observations:
            if obs.fingerprint in wanted and obs.fingerprint not in result:
                result[obs.fingerprint] = (
                    obs.handshake.stack_fingerprint()
                    if obs.handshake is not None
                    else None
                )
    for fingerprint in wanted - set(result):
        result[fingerprint] = None
    return result


def link_on_feature_with_fingerprint(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    feature: Feature,
    overlap_allowance: int = 1,
    fingerprint_index: Optional[dict[bytes, Optional[tuple]]] = None,
) -> LinkResult:
    """§6.3.2 linking refined by the stack fingerprint.

    A *conservative refinement* of
    :func:`repro.core.linking.link_on_feature`: the plain methodology runs
    first (including its lifetime-overlap safety net), and each accepted
    group is then partitioned by stack fingerprint, discarding the
    cross-family pairs.  Splitting only ever removes pairs, so precision
    can never drop below certificate-only linking.

    (The naive alternative — bucketing on ``(value, fingerprint)`` up
    front — is strictly worse: it resurrects shared values that the
    overlap rule rejected, because each per-family slice of a popular
    value can look overlap-free on its own.)

    Certificates without handshake data share a ``None`` fingerprint and
    therefore stay grouped as plain linking grouped them.
    """
    fingerprints = list(fingerprints)
    if fingerprint_index is None:
        fingerprint_index = stack_fingerprints(dataset, fingerprints)

    plain = link_on_feature(dataset, fingerprints, feature, overlap_allowance)
    groups: list[LinkedGroup] = []
    split_singletons = 0
    for group in plain.groups:
        by_stack: dict[Optional[tuple], list[bytes]] = {}
        for fingerprint in group.fingerprints:
            by_stack.setdefault(
                fingerprint_index.get(fingerprint), []
            ).append(fingerprint)
        for members in by_stack.values():
            if len(members) < 2:
                split_singletons += 1
                continue
            groups.append(
                LinkedGroup(
                    feature=feature,
                    value=group.value,
                    fingerprints=tuple(sorted(members)),
                )
            )
    return LinkResult(
        feature=feature,
        groups=groups,
        rejected_values=plain.rejected_values,
        singleton_values=plain.singleton_values + split_singletons,
    )


@dataclass(frozen=True)
class PFSReport:
    """Forward-secrecy posture of one certificate population."""

    n_with_handshake: int
    pfs_fraction: float
    #: Certificates that both lack PFS and share their key with others —
    #: the Lancom double-jeopardy of footnote 10.
    shared_key_without_pfs: int


def pfs_support(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> PFSReport:
    """§5.2/footnote 10: who negotiates forward-secure ciphers?"""
    fingerprints = list(fingerprints)
    key_counts: dict = {}
    handshakes: dict[bytes, object] = {}
    for fingerprint in fingerprints:
        key = dataset.certificate(fingerprint).public_key
        key_counts[key] = key_counts.get(key, 0) + 1
    for scan in dataset.scans:
        for obs in scan.observations:
            if obs.handshake is not None and obs.fingerprint not in handshakes:
                handshakes[obs.fingerprint] = obs.handshake

    observed = [fp for fp in fingerprints if fp in handshakes]
    if not observed:
        return PFSReport(0, 0.0, 0)
    pfs = 0
    shared_no_pfs = 0
    for fingerprint in observed:
        record = handshakes[fingerprint]
        forward_secure = suite(record.cipher).forward_secure
        if forward_secure:
            pfs += 1
        elif key_counts[dataset.certificate(fingerprint).public_key] > 1:
            shared_no_pfs += 1
    return PFSReport(
        n_with_handshake=len(observed),
        pfs_fraction=pfs / len(observed),
        shared_key_without_pfs=shared_no_pfs,
    )
