"""§5.1 — Certificate longevity (Figures 3, 4, and 5).

Validity periods (Not Before → Not After), observed lifetimes (first scan →
last scan, inclusive), and the reissue-gap analysis over ephemeral
certificates that establishes the periodic-reissue hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...scanner.dataset import ScanDataset
from ...stats.cdf import CDF

__all__ = [
    "validity_periods",
    "lifetimes",
    "LifetimeSummary",
    "ephemeral_fingerprints",
    "ReissueGap",
    "reissue_gap",
]


def validity_periods(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> CDF:
    """Figure 3: distribution of Not After − Not Before, in days.

    Negative values (Not After before Not Before) are kept — they are
    5.38 % of the paper's invalid population and the CDF's non-zero start.
    """
    return CDF.of(
        dataset.certificate(fp).validity_period_days for fp in fingerprints
    )


@dataclass(frozen=True)
class LifetimeSummary:
    """Figure 4 plus its headline statistics."""

    cdf: CDF
    single_scan_fraction: float

    @property
    def median_days(self) -> float:
        return self.cdf.median


def lifetimes(dataset: ScanDataset, fingerprints: Iterable[bytes]) -> LifetimeSummary:
    """Figure 4: observed lifetimes (inclusive first→last scan day)."""
    fingerprints = list(fingerprints)
    cdf = CDF.of(dataset.lifetime_days(fp) for fp in fingerprints)
    single = sum(
        1 for fp in fingerprints if len(dataset.scan_indexes_of(fp)) == 1
    )
    return LifetimeSummary(cdf=cdf, single_scan_fraction=single / len(fingerprints))


def ephemeral_fingerprints(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> list[bytes]:
    """Certificates observed in exactly one scan (§5.1's 'ephemeral')."""
    return [
        fp for fp in fingerprints if len(dataset.scan_indexes_of(fp)) == 1
    ]


@dataclass(frozen=True)
class ReissueGap:
    """Figure 5: first-advertised date minus Not Before, over ephemerals."""

    cdf: CDF                       # non-negative gaps only, as plotted
    same_day_fraction: float       # paper: ~30 %
    within_four_days_fraction: float   # paper: ~70 %
    over_1000_days_fraction: float     # paper: ~20 %
    negative_fraction: float       # Not Before after first sighting: 2.9 %


def reissue_gap(dataset: ScanDataset, fingerprints: Iterable[bytes]) -> ReissueGap:
    """The Figure 5 analysis.

    A small gap means the certificate was generated just before the scan
    that caught it (a reissuing device with a correct clock); a 1000+-day
    gap means the Not Before is a firmware epoch, not an issue time.
    """
    gaps = []
    for fingerprint in fingerprints:
        first_day, _ = dataset.first_last_day(fingerprint)
        gaps.append(first_day - dataset.certificate(fingerprint).not_before)
    total = len(gaps)
    if total == 0:
        raise ValueError("no ephemeral certificates to analyze")
    non_negative = [gap for gap in gaps if gap >= 0]
    return ReissueGap(
        cdf=CDF.of(non_negative if non_negative else [0]),
        same_day_fraction=sum(1 for gap in gaps if gap == 0) / total,
        within_four_days_fraction=sum(1 for gap in gaps if 0 <= gap < 4) / total,
        over_1000_days_fraction=sum(1 for gap in gaps if gap > 1000) / total,
        negative_fraction=sum(1 for gap in gaps if gap < 0) / total,
    )
