"""§4.1 + §4.2 corpus-level analyses (Figures 1 and 2).

* :func:`per_scan_counts` — valid/invalid certificate counts per scan and
  campaign (Figure 2), plus the per-scan invalid-fraction summary
  (59.6–73.7 %, 65.0 % average in the paper).
* :func:`scan_discrepancy` — for a day both campaigns scanned, the
  fraction of hosts unique to each scan per /8 network (Figure 1).
* :func:`blacklist_attribution` — the §4.1 investigation: group the
  missing hosts by announced prefix, find prefixes *always* missing from
  one campaign, and measure how much of the discrepancy they explain
  (74.0 % / 62.6 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...net.bgp import PrefixTable
from ...net.ip import Prefix, slash8
from ...scanner.dataset import ScanDataset
from ..validation import ValidationReport

__all__ = [
    "ScanCount",
    "per_scan_counts",
    "invalid_fraction_summary",
    "SlashEightDiscrepancy",
    "scan_discrepancy",
    "BlacklistAttribution",
    "blacklist_attribution",
]


@dataclass(frozen=True)
class ScanCount:
    """One point of Figure 2."""

    day: int
    source: str
    n_valid: int
    n_invalid: int

    @property
    def invalid_fraction(self) -> float:
        total = self.n_valid + self.n_invalid
        return self.n_invalid / total if total else 0.0


def per_scan_counts(
    dataset: ScanDataset, report: ValidationReport
) -> list[ScanCount]:
    """Distinct valid/invalid certificates in every scan (Figure 2)."""
    counts = []
    for scan in dataset.scans:
        fingerprints = scan.fingerprints()
        n_invalid = sum(1 for fp in fingerprints if fp in report.invalid)
        n_valid = sum(1 for fp in fingerprints if fp in report.valid)
        counts.append(
            ScanCount(day=scan.day, source=scan.source,
                      n_valid=n_valid, n_invalid=n_invalid)
        )
    return counts


def invalid_fraction_summary(counts: list[ScanCount]) -> tuple[float, float, float]:
    """(min, mean, max) per-scan invalid fraction."""
    fractions = [count.invalid_fraction for count in counts]
    return min(fractions), sum(fractions) / len(fractions), max(fractions)


@dataclass(frozen=True)
class SlashEightDiscrepancy:
    """One /8's bar in Figure 1."""

    network: int              # the /8's top octet
    unique_to_a_fraction: float
    unique_to_b_fraction: float
    hosts_a: int
    hosts_b: int


def scan_discrepancy(
    dataset: ScanDataset, day: int, source_a: str = "umich", source_b: str = "rapid7"
) -> list[SlashEightDiscrepancy]:
    """Figure 1: per /8, the fraction of hosts unique to each campaign."""
    scans_a = [s for s in dataset.scans if s.day == day and s.source == source_a]
    scans_b = [s for s in dataset.scans if s.day == day and s.source == source_b]
    if not scans_a or not scans_b:
        raise ValueError(f"day {day} lacks scans from both campaigns")
    ips_a = scans_a[0].ips()
    ips_b = scans_b[0].ips()

    by_network: dict[int, tuple[set[int], set[int]]] = {}
    for ip in ips_a:
        by_network.setdefault(slash8(ip), (set(), set()))[0].add(ip)
    for ip in ips_b:
        by_network.setdefault(slash8(ip), (set(), set()))[1].add(ip)

    rows = []
    for network in sorted(by_network):
        hosts_a, hosts_b = by_network[network]
        rows.append(
            SlashEightDiscrepancy(
                network=network,
                unique_to_a_fraction=(
                    len(hosts_a - hosts_b) / len(hosts_a) if hosts_a else 0.0
                ),
                unique_to_b_fraction=(
                    len(hosts_b - hosts_a) / len(hosts_b) if hosts_b else 0.0
                ),
                hosts_a=len(hosts_a),
                hosts_b=len(hosts_b),
            )
        )
    return rows


@dataclass(frozen=True)
class BlacklistAttribution:
    """§4.1's explanation of the two-corpus discrepancy."""

    overlap_days: tuple[int, ...]
    prefixes_covered_by_both: int
    prefixes_always_missing_from_a: int
    prefixes_always_missing_from_b: int
    #: Mean per-day hosts present in one corpus but not the other.
    mean_hosts_only_in_a: float
    mean_hosts_only_in_b: float
    #: Share of those hosts inside the never-covered prefixes.
    fraction_explained_a: float   # of hosts only in A, in B's blind spots
    fraction_explained_b: float


def blacklist_attribution(
    dataset: ScanDataset,
    prefix_of: Callable[[int], Optional[Prefix]],
    source_a: str = "umich",
    source_b: str = "rapid7",
) -> BlacklistAttribution:
    """Test the blacklisting hypothesis on every both-campaign day.

    ``prefix_of`` maps an address to its announced BGP prefix (the
    RouteViews role); :class:`~repro.net.bgp.PrefixTable` provides it via
    ``lambda ip: table.lookup(ip).prefix``.
    """
    days_a = {scan.day for scan in dataset.scans if scan.source == source_a}
    days_b = {scan.day for scan in dataset.scans if scan.source == source_b}
    overlap = tuple(sorted(days_a & days_b))
    if not overlap:
        raise ValueError("campaigns share no scan day")

    per_day: list[tuple[set, set]] = []   # (prefixes seen by A, by B)
    only_a_hosts: list[set[int]] = []
    only_b_hosts: list[set[int]] = []
    for day in overlap:
        ips_a = next(
            s for s in dataset.scans if s.day == day and s.source == source_a
        ).ips()
        ips_b = next(
            s for s in dataset.scans if s.day == day and s.source == source_b
        ).ips()
        prefixes_a = {prefix_of(ip) for ip in ips_a} - {None}
        prefixes_b = {prefix_of(ip) for ip in ips_b} - {None}
        per_day.append((prefixes_a, prefixes_b))
        only_a_hosts.append(ips_a - ips_b)
        only_b_hosts.append(ips_b - ips_a)

    all_prefixes_a = set.union(*(pair[0] for pair in per_day))
    all_prefixes_b = set.union(*(pair[1] for pair in per_day))
    always_missing_from_a = set.intersection(
        *(pair[1] - pair[0] for pair in per_day)
    )
    always_missing_from_b = set.intersection(
        *(pair[0] - pair[1] for pair in per_day)
    )

    def explained(host_sets: list[set[int]], blind_spots: set) -> float:
        total = explained_count = 0
        for hosts in host_sets:
            for ip in hosts:
                total += 1
                prefix = prefix_of(ip)
                if prefix in blind_spots:
                    explained_count += 1
        return explained_count / total if total else 0.0

    return BlacklistAttribution(
        overlap_days=overlap,
        prefixes_covered_by_both=len(all_prefixes_a & all_prefixes_b),
        prefixes_always_missing_from_a=len(always_missing_from_a),
        prefixes_always_missing_from_b=len(always_missing_from_b),
        mean_hosts_only_in_a=sum(map(len, only_a_hosts)) / len(overlap),
        mean_hosts_only_in_b=sum(map(len, only_b_hosts)) / len(overlap),
        fraction_explained_a=explained(only_a_hosts, always_missing_from_b),
        fraction_explained_b=explained(only_b_hosts, always_missing_from_a),
    )
