"""§4–§5 analyses: scan discrepancies, longevity, keys, issuers, hosts."""

from .hosts import (
    ASDiversity,
    IPDiversity,
    as_diversity,
    as_type_breakdown,
    classify_issuer_device_type,
    device_type_breakdown,
    ip_diversity,
    top_hosting_ases,
)
from .issuers import (
    KeyConcentration,
    private_ip_issuer_count,
    self_signed_fraction,
    signing_key_concentration,
    top_issuers,
)
from .keys import KeySharingReport, key_sharing
from .longevity import (
    LifetimeSummary,
    ReissueGap,
    ephemeral_fingerprints,
    lifetimes,
    reissue_gap,
    validity_periods,
)
from .scans import (
    BlacklistAttribution,
    ScanCount,
    SlashEightDiscrepancy,
    blacklist_attribution,
    invalid_fraction_summary,
    per_scan_counts,
    scan_discrepancy,
)

__all__ = [
    "ASDiversity",
    "IPDiversity",
    "as_diversity",
    "as_type_breakdown",
    "classify_issuer_device_type",
    "device_type_breakdown",
    "ip_diversity",
    "top_hosting_ases",
    "KeyConcentration",
    "private_ip_issuer_count",
    "self_signed_fraction",
    "signing_key_concentration",
    "top_issuers",
    "KeySharingReport",
    "key_sharing",
    "LifetimeSummary",
    "ReissueGap",
    "ephemeral_fingerprints",
    "lifetimes",
    "reissue_gap",
    "validity_periods",
    "BlacklistAttribution",
    "ScanCount",
    "SlashEightDiscrepancy",
    "blacklist_attribution",
    "invalid_fraction_summary",
    "per_scan_counts",
    "scan_discrepancy",
]
