"""§5.3 — Issuer diversity (Table 1 and the signing-key concentration).

Who signs the certificates: the most frequent issuer Common Names (valid
side: the big commercial CAs; invalid side: device vendors, private IP
literals, and the empty string), how self-signed the invalid population
is, and how concentrated the *signing keys* are (five keys span half of
all valid certificates; the invalid side has vastly more parent keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ...scanner.dataset import ScanDataset

__all__ = [
    "top_issuers",
    "self_signed_fraction",
    "KeyConcentration",
    "signing_key_concentration",
    "private_ip_issuer_count",
]

_EMPTY_LABEL = "(Empty string)"


def top_issuers(
    dataset: ScanDataset, fingerprints: Iterable[bytes], n: int = 5
) -> list[tuple[str, int]]:
    """Table 1: the ``n`` most frequent issuer Common Names."""
    counts: dict[str, int] = {}
    for fingerprint in fingerprints:
        cn = dataset.certificate(fingerprint).issuer_cn
        label = cn if cn else _EMPTY_LABEL
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.items(), key=lambda item: item[1], reverse=True)[:n]


def self_signed_fraction(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> float:
    """Share of certificates that verify under their own key (88.0 %)."""
    fingerprints = list(fingerprints)
    if not fingerprints:
        return 0.0
    count = sum(
        1 for fp in fingerprints if dataset.certificate(fp).is_self_signed()
    )
    return count / len(fingerprints)


@dataclass(frozen=True)
class KeyConcentration:
    """Concentration of parent (signing) keys over one population."""

    n_certificates: int          # certificates with an identifiable parent key
    n_parent_keys: int
    top5_coverage: float         # certificate share of the 5 biggest keys
    keys_for_half: int           # how many keys to span 50 % of certificates


def signing_key_concentration(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    require_aki: bool = True,
) -> KeyConcentration:
    """§5.3's parent-key analysis.

    The parent key is identified by the Authority Key Identifier (the
    paper restricts the invalid-side analysis to the non-self-signed
    certificates that list their AKI).  With ``require_aki=False``,
    self-signed certificates count their own key as parent.
    """
    counts: dict[bytes, int] = {}
    total = 0
    for fingerprint in fingerprints:
        cert = dataset.certificate(fingerprint)
        parent: Optional[bytes] = cert.extensions.authority_key_id
        if parent is None:
            if require_aki:
                continue
            parent = cert.public_key.fingerprint[:20]
        counts[parent] = counts.get(parent, 0) + 1
        total += 1
    if total == 0:
        return KeyConcentration(0, 0, 0.0, 0)

    ordered = sorted(counts.values(), reverse=True)
    top5 = sum(ordered[:5]) / total
    running = 0
    keys_for_half = len(ordered)
    for index, count in enumerate(ordered, start=1):
        running += count
        if running >= total / 2:
            keys_for_half = index
            break
    return KeyConcentration(
        n_certificates=total,
        n_parent_keys=len(ordered),
        top5_coverage=top5,
        keys_for_half=keys_for_half,
    )


def private_ip_issuer_count(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> int:
    """Certificates issued under a 192.168.0.0/16 Common Name (§5.3)."""
    from ...net.ip import is_private, looks_like_ipv4, str_to_ip

    count = 0
    for fingerprint in fingerprints:
        cn = dataset.certificate(fingerprint).issuer_cn
        if cn and looks_like_ipv4(cn) and is_private(str_to_ip(cn)):
            count += 1
    return count
