"""§5.4 — Host diversity (Figures 7 and 8, Tables 2, 3, and 4).

From where are certificates served: addresses per certificate, AS
diversity and concentration, AS-type breakdown (CAIDA-style), top hosting
ASes, and the device-type attribution of the top invalid issuers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ...net.asn import ASRegistry, ASType
from ...net.ip import is_private, looks_like_ipv4, str_to_ip
from ...scanner.dataset import ScanDataset
from ...stats.cdf import CDF
from ..consistency import ASLookup

__all__ = [
    "ip_diversity",
    "IPDiversity",
    "as_diversity",
    "ASDiversity",
    "as_type_breakdown",
    "top_hosting_ases",
    "DEVICE_TYPE_RULES",
    "classify_issuer_device_type",
    "device_type_breakdown",
]


@dataclass(frozen=True)
class IPDiversity:
    """Figure 7's inputs."""

    cdf: CDF                 # mean addresses per scan, per certificate
    p99: float
    max_mean_ips: float


def ip_diversity(dataset: ScanDataset, fingerprints: Iterable[bytes]) -> IPDiversity:
    """Average number of addresses advertising each certificate per scan."""
    means = [dataset.mean_ips_per_scan(fp) for fp in fingerprints]
    cdf = CDF.of(means)
    return IPDiversity(cdf=cdf, p99=cdf.percentile(0.99), max_mean_ips=cdf.max)


@dataclass(frozen=True)
class ASDiversity:
    """Figure 8's inputs plus the concentration claims of §5.4."""

    ases_per_cert_cdf: CDF
    #: Certificate share of the single largest AS (18 % invalid / 10 % valid).
    largest_as_share: float
    #: ASes needed to cover 70 % of certificates (165 invalid / 500 valid).
    ases_for_70pct: int
    n_ases: int


def as_diversity(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    as_of: ASLookup,
) -> ASDiversity:
    """Map every sighting to its origin AS and measure diversity."""
    per_cert_ases: list[int] = []
    cert_count_per_as: dict[int, int] = {}
    for fingerprint in fingerprints:
        ases = set()
        for scan_idx, ip in dataset.appearances(fingerprint):
            asn = as_of(ip, dataset.scans[scan_idx].day)
            if asn is not None:
                ases.add(asn)
        per_cert_ases.append(len(ases))
        # Attribute the certificate to every AS hosting it (as the paper's
        # per-AS counts do); the concentration metrics use these counts.
        for asn in ases:
            cert_count_per_as[asn] = cert_count_per_as.get(asn, 0) + 1

    total = len(per_cert_ases)
    ordered = sorted(cert_count_per_as.values(), reverse=True)
    running = 0
    ases_for_70 = len(ordered)
    for index, count in enumerate(ordered, start=1):
        running += count
        if running >= 0.70 * total:
            ases_for_70 = index
            break
    return ASDiversity(
        ases_per_cert_cdf=CDF.of(per_cert_ases),
        largest_as_share=(ordered[0] / total) if ordered else 0.0,
        ases_for_70pct=ases_for_70,
        n_ases=len(ordered),
    )


def _primary_as(
    dataset: ScanDataset, fingerprint: bytes, as_of: ASLookup
) -> Optional[int]:
    """The AS a certificate is most often served from."""
    counts: dict[int, int] = {}
    for scan_idx, ip in dataset.appearances(fingerprint):
        asn = as_of(ip, dataset.scans[scan_idx].day)
        if asn is not None:
            counts[asn] = counts.get(asn, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)


def as_type_breakdown(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    as_of: ASLookup,
    registry: ASRegistry,
) -> dict[ASType, float]:
    """Table 2: certificate share per CAIDA-style AS type."""
    counts: dict[ASType, int] = {t: 0 for t in ASType}
    total = 0
    for fingerprint in fingerprints:
        asn = _primary_as(dataset, fingerprint, as_of)
        as_type = registry.classify(asn) if asn is not None else ASType.UNKNOWN
        counts[as_type] += 1
        total += 1
    return {t: count / total if total else 0.0 for t, count in counts.items()}


def top_hosting_ases(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    as_of: ASLookup,
    registry: ASRegistry,
    n: int = 5,
) -> list[tuple[int, str, str, int]]:
    """Table 3: (ASN, name, country, certificates) of the top hosts."""
    counts: dict[int, int] = {}
    for fingerprint in fingerprints:
        asn = _primary_as(dataset, fingerprint, as_of)
        if asn is not None:
            counts[asn] = counts.get(asn, 0) + 1
    rows = []
    # Ties broken by ASN: callers pass fingerprint *sets*, so insertion
    # order (the sort's implicit tie-break) would vary with PYTHONHASHSEED.
    for asn, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]:
        info = registry.get(asn)
        name = info.name if info else f"AS{asn}"
        record = info.org_at(dataset.scans[0].day) if info else None
        country = record.country if record else "???"
        rows.append((asn, name, country, count))
    return rows


#: Issuer-CN pattern → Table 4 device class.  This mirrors the paper's
#: *manual* classification of the top-50 issuers (looking up model numbers
#: and loading device pages); extend it as new vendors appear.
DEVICE_TYPE_RULES: tuple[tuple[str, str], ...] = (
    # Specific needles first: 'enterprise-firewall-site-3 CA' must match
    # 'firewall' before the generic '-site-' → VPN rule, and
    # 'enterprise-gateway-site-3 CA' must match '-site-' before 'gateway'.
    ("fw-", "Firewall"),
    ("firewall", "Firewall"),
    ("fortigate", "Firewall"),
    ("managed", "Remote administration"),
    ("vpn", "VPN"),
    ("-site-", "VPN"),
    ("lancom", "Home router/cable modem"),
    ("fritz", "Home router/cable modem"),
    ("gateway", "Home router/cable modem"),
    ("cpe", "Home router/cable modem"),
    ("vigor", "Home router/cable modem"),
    ("remotewd", "Remote storage"),
    ("wd2go", "Remote storage"),
    ("vmware", "Remote administration"),
    ("mgmt", "Remote administration"),
    ("managed services", "Remote administration"),
    ("camera", "IP camera"),
    ("web server", "Other (IPTV, IP phone, Alternate CA, Printer)"),
    ("appliance", "Other (IPTV, IP phone, Alternate CA, Printer)"),
)


def classify_issuer_device_type(issuer_cn: Optional[str]) -> str:
    """Best-effort device class for one issuer Common Name."""
    if not issuer_cn:
        return "Unknown"
    lowered = issuer_cn.lower()
    if looks_like_ipv4(issuer_cn) and is_private(str_to_ip(issuer_cn)):
        return "Home router/cable modem"
    for needle, device_type in DEVICE_TYPE_RULES:
        if needle in lowered:
            return device_type
    return "Unknown"


def device_type_breakdown(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    top_n_issuers: int = 50,
) -> dict[str, float]:
    """Table 4: device-type shares over the top-N issuers' certificates."""
    issuer_counts: dict[Optional[str], int] = {}
    for fingerprint in fingerprints:
        cn = dataset.certificate(fingerprint).issuer_cn
        issuer_counts[cn] = issuer_counts.get(cn, 0) + 1
    top_issuers = {
        cn
        for cn, _ in sorted(
            issuer_counts.items(), key=lambda kv: kv[1], reverse=True
        )[:top_n_issuers]
    }
    type_counts: dict[str, int] = {}
    total = 0
    for cn in top_issuers:
        count = issuer_counts[cn]
        device_type = classify_issuer_device_type(cn)
        type_counts[device_type] = type_counts.get(device_type, 0) + count
        total += count
    return {
        device_type: count / total for device_type, count in type_counts.items()
    }
