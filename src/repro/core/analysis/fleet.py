"""§7.1's motivating question: how is the device population changing?

The paper motivates tracking with longitudinal questions — "researchers
may wish to study how the end-user devices attached to the Internet are
changing, as users upgrade devices or change ISPs".  With the tracked
device population (linked groups + unlinked long-lived certificates),
those questions become answerable from scan data alone:

* :func:`population_series` — tracked devices present per scan day;
* :func:`turnover` — arrival/departure rates and observed lifespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...stats.cdf import CDF
from ..tracking import TrackedDevice

__all__ = ["population_series", "FleetTurnover", "turnover"]


def population_series(
    devices: Sequence[TrackedDevice], scan_days: Sequence[int]
) -> list[tuple[int, int]]:
    """(day, devices observed alive) per scan day.

    A device counts as alive between its first and last sighting,
    inclusive — the same lower-bound convention as certificate lifetimes.
    """
    spans = [(device.first_day, device.last_day) for device in devices]
    series = []
    for day in scan_days:
        alive = sum(1 for first, last in spans if first <= day <= last)
        series.append((day, alive))
    return series


@dataclass(frozen=True)
class FleetTurnover:
    """Arrival/departure statistics of the tracked population."""

    n_devices: int
    arrivals_per_month: float       # mean first-sightings per 30 days
    departures_per_month: float     # mean last-sightings per 30 days
    lifespan_cdf: CDF               # observed spans, days
    #: Devices seen in both the first and last tenth of the dataset.
    persistent_fraction: float


def turnover(
    devices: Sequence[TrackedDevice],
    first_day: int,
    last_day: int,
) -> FleetTurnover:
    """Summarize population churn over the dataset window.

    Arrivals exclude devices already present at the window's opening edge
    (their true arrival predates the dataset), and departures exclude
    devices still present at the closing edge, so the rates are not
    inflated by censoring.
    """
    if not devices:
        raise ValueError("no tracked devices")
    span_days = max(1, last_day - first_day + 1)
    months = span_days / 30.0
    edge = span_days // 10

    arrivals = sum(
        1 for device in devices if device.first_day > first_day + edge
    )
    departures = sum(
        1 for device in devices if device.last_day < last_day - edge
    )
    persistent = sum(
        1
        for device in devices
        if device.first_day <= first_day + edge
        and device.last_day >= last_day - edge
    )
    return FleetTurnover(
        n_devices=len(devices),
        arrivals_per_month=arrivals / months,
        departures_per_month=departures / months,
        lifespan_cdf=CDF.of(device.span_days for device in devices),
        persistent_fraction=persistent / len(devices),
    )
