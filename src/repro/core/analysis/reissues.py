"""Valid-side reissue analysis (the Zhang et al. context of §5.2).

For valid certificates, reissues are detectable directly from scan data:
a website keeps its Common Name, so consecutive certificates with the same
subject CN form a reissue chain (the paper: "tracking valid certificate
reissues is relatively straightforward, as one can generally match on
Common Names").

Two analyses:

* :func:`valid_reissues` — every (old → new) certificate transition with
  its timing and whether the key pair was retained;
* :func:`incident_window` — Zhang-style event forensics: reissue-rate and
  key-retention comparison inside vs outside a disclosure window
  (Heartbleed: a reissue spike whose key-retention collapses from ~50 % to
  4.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ...scanner.dataset import ScanDataset

__all__ = ["Reissue", "valid_reissues", "IncidentWindow", "incident_window"]


@dataclass(frozen=True)
class Reissue:
    """One observed certificate replacement on a stable Common Name."""

    common_name: str
    old_fingerprint: bytes
    new_fingerprint: bytes
    #: Day the replacement certificate was first observed.
    observed_day: int
    #: Days since the *previous* certificate was first observed.
    predecessor_age_days: int
    same_key: bool


def valid_reissues(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> list[Reissue]:
    """Mine reissue chains from the valid population by Common Name."""
    by_cn: dict[str, list[bytes]] = {}
    for fingerprint in fingerprints:
        cn = dataset.certificate(fingerprint).subject_cn
        if cn:
            by_cn.setdefault(cn, []).append(fingerprint)

    reissues: list[Reissue] = []
    for cn, members in by_cn.items():
        if len(members) < 2:
            continue
        ordered = sorted(members, key=lambda fp: dataset.first_last_day(fp)[0])
        for old, new in zip(ordered, ordered[1:]):
            old_first, _ = dataset.first_last_day(old)
            new_first, _ = dataset.first_last_day(new)
            reissues.append(
                Reissue(
                    common_name=cn,
                    old_fingerprint=old,
                    new_fingerprint=new,
                    observed_day=new_first,
                    predecessor_age_days=new_first - old_first,
                    same_key=(
                        dataset.certificate(old).public_key
                        == dataset.certificate(new).public_key
                    ),
                )
            )
    return reissues


@dataclass(frozen=True)
class IncidentWindow:
    """Reissue behaviour inside vs outside a disclosure window."""

    window_start: int
    window_end: int
    reissues_in_window: int
    reissues_outside: int
    #: Reissues per day, as a rate comparison.
    rate_in_window: float
    rate_outside: float
    key_retention_in_window: float
    key_retention_outside: float

    @property
    def spike_factor(self) -> float:
        """How many times the baseline rate the window runs at."""
        if self.rate_outside == 0:
            return float("inf") if self.rate_in_window else 1.0
        return self.rate_in_window / self.rate_outside


def incident_window(
    reissues: list[Reissue],
    event_day: int,
    window_days: int = 45,
    first_day: Optional[int] = None,
    last_day: Optional[int] = None,
) -> IncidentWindow:
    """Compare reissue behaviour around ``event_day`` against baseline.

    Early reissues (predecessor younger than half its normal interval are
    already "out of schedule") are all counted; the discrimination comes
    from rates and key retention, as in Zhang et al.
    """
    if not reissues:
        raise ValueError("no reissues to analyze")
    window_start = event_day
    window_end = event_day + window_days
    days = [reissue.observed_day for reissue in reissues]
    first_day = first_day if first_day is not None else min(days)
    last_day = last_day if last_day is not None else max(days)

    inside = [r for r in reissues if window_start <= r.observed_day <= window_end]
    outside = [r for r in reissues if r not in inside]
    outside_days = max(1, (last_day - first_day + 1) - (window_end - window_start + 1))

    def retention(rows: list[Reissue]) -> float:
        return (
            sum(1 for row in rows if row.same_key) / len(rows) if rows else 0.0
        )

    return IncidentWindow(
        window_start=window_start,
        window_end=window_end,
        reissues_in_window=len(inside),
        reissues_outside=len(outside),
        rate_in_window=len(inside) / (window_end - window_start + 1),
        rate_outside=len(outside) / outside_days,
        key_retention_in_window=retention(inside),
        key_retention_outside=retention(outside),
    )
