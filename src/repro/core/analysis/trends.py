"""§5.4's closing forecast, quantified.

The paper: *"we anticipate that, as these devices become increasingly
popular — and particularly with the growing trend towards an Internet of
Things — the number of invalid certificates will continue to grow."*

This module fits per-scan certificate counts with ordinary least squares
and extrapolates, giving the growth-rate comparison (invalid counts grow
faster than valid) and a forecast horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .scans import ScanCount

__all__ = ["GrowthFit", "fit_growth", "growth_comparison"]


@dataclass(frozen=True)
class GrowthFit:
    """A least-squares linear fit of counts over scan days."""

    slope_per_day: float
    intercept: float
    r_squared: float
    first_day: int
    last_day: int

    @property
    def slope_per_year(self) -> float:
        return self.slope_per_day * 365.0

    def predict(self, day: int) -> float:
        """Extrapolated count on ``day``."""
        return self.intercept + self.slope_per_day * day

    def doubling_days(self) -> float:
        """Days for the count to double from the last observed level.

        ``inf`` for flat or shrinking populations.
        """
        current = self.predict(self.last_day)
        if self.slope_per_day <= 0 or current <= 0:
            return float("inf")
        return current / self.slope_per_day


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return 0.0, mean_y, 0.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((y - mean_y) ** 2 for y in ys)
    ss_residual = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 - ss_residual / ss_total if ss_total else 1.0
    return slope, intercept, r_squared


def fit_growth(counts: Sequence[ScanCount], population: str = "invalid") -> GrowthFit:
    """Fit one population's per-scan counts over time."""
    if len(counts) < 2:
        raise ValueError("need at least two scans to fit a trend")
    xs = [float(count.day) for count in counts]
    if population == "invalid":
        ys = [float(count.n_invalid) for count in counts]
    elif population == "valid":
        ys = [float(count.n_valid) for count in counts]
    else:
        raise ValueError(f"unknown population {population!r}")
    slope, intercept, r_squared = _least_squares(xs, ys)
    return GrowthFit(
        slope_per_day=slope,
        intercept=intercept,
        r_squared=r_squared,
        first_day=int(xs[0]),
        last_day=int(xs[-1]),
    )


@dataclass(frozen=True)
class GrowthComparison:
    """Invalid vs valid growth, the §5.4 forecast input."""

    invalid: GrowthFit
    valid: GrowthFit

    @property
    def invalid_grows_faster(self) -> bool:
        return self.invalid.slope_per_day > self.valid.slope_per_day

    def invalid_share_at(self, day: int) -> float:
        """Extrapolated invalid share of per-scan certificates on ``day``."""
        invalid = max(0.0, self.invalid.predict(day))
        valid = max(0.0, self.valid.predict(day))
        total = invalid + valid
        return invalid / total if total else 0.0


def growth_comparison(counts: Sequence[ScanCount]) -> GrowthComparison:
    """Fit both populations."""
    return GrowthComparison(
        invalid=fit_growth(counts, "invalid"),
        valid=fit_growth(counts, "valid"),
    )
