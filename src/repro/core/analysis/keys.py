"""§5.2 — Key diversity (Figure 6).

How many certificates share public keys: the key-coverage curve, the
fraction of certificates whose key appears on at least one other
certificate (47 % of invalid certificates in the paper), and the single
most-shared key (the Lancom key, on 6.5 % of all invalid certificates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...scanner.dataset import ScanDataset
from ...x509.keys import PublicKey

__all__ = ["KeySharingReport", "key_sharing"]


@dataclass(frozen=True)
class KeySharingReport:
    """Key-diversity statistics for one certificate population."""

    n_certificates: int
    n_keys: int
    #: Fraction of certificates sharing their key with another certificate.
    shared_fraction: float
    #: The single most-shared key and its certificate share.
    top_key: PublicKey
    top_key_fraction: float
    #: (fraction of keys, fraction of certificates) — Figure 6's curve,
    #: with keys ordered by descending certificate count.
    coverage_curve: tuple[tuple[float, float], ...]

    def certificates_covered_by(self, key_fraction: float) -> float:
        """Certificate share covered by the top ``key_fraction`` of keys."""
        covered = 0.0
        for keys_fraction, certs_fraction in self.coverage_curve:
            if keys_fraction <= key_fraction:
                covered = certs_fraction
            else:
                break
        return covered


def key_sharing(
    dataset: ScanDataset, fingerprints: Iterable[bytes]
) -> KeySharingReport:
    """Compute the Figure 6 analysis for one population."""
    counts: dict[PublicKey, int] = {}
    total = 0
    for fingerprint in fingerprints:
        key = dataset.certificate(fingerprint).public_key
        counts[key] = counts.get(key, 0) + 1
        total += 1
    if total == 0:
        raise ValueError("empty certificate population")

    ordered = sorted(counts.items(), key=lambda item: item[1], reverse=True)
    shared = sum(count for _, count in ordered if count > 1)
    curve = []
    running = 0
    for index, (_, count) in enumerate(ordered, start=1):
        running += count
        curve.append((index / len(ordered), running / total))
    top_key, top_count = ordered[0]
    return KeySharingReport(
        n_certificates=total,
        n_keys=len(ordered),
        shared_fraction=shared / total,
        top_key=top_key,
        top_key_fraction=top_count / total,
        coverage_curve=tuple(curve),
    )
