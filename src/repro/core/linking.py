"""§6.3.2 — Linking certificates across scans.

The paper's central methodology: group certificates by a shared field
value, then accept the group as "one device's reissue chain" only if no
two member certificates' observed lifetimes overlap by more than a single
scan.  (One scan of overlap is allowed because a device that changes
address mid-scan may expose both its old and new certificate in the same
sweep — Figure 9's PK2 case.  Two or more overlapping scans mean two
devices serving distinct certificates simultaneously — the PK3 case — and
the whole group is rejected for that field.)

Both stages run on the columnar kernels: grouping buckets interned value
ids from the dataset's :class:`~repro.core.kernels.FeatureMatrix` instead
of re-extracting each certificate, and the overlap rule reads the
(first, last) scan-index arrays of ``dataset.intervals`` instead of
materializing each member's full scan list.  ``REPRO_LINK_PARITY=1``
re-runs the naive row path and asserts identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Sequence

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from .features import Feature, link_parity_enabled, linkable_value

__all__ = ["LinkedGroup", "LinkResult", "group_by_feature", "link_on_feature"]


@dataclass(frozen=True)
class LinkedGroup:
    """Certificates linked as one device's reissue chain via one field."""

    feature: Feature
    value: Hashable
    fingerprints: tuple[bytes, ...]

    def __len__(self) -> int:
        return len(self.fingerprints)


@dataclass
class LinkResult:
    """Outcome of linking one feature over a certificate population."""

    feature: Feature
    groups: list[LinkedGroup]
    rejected_values: int          # candidate values rejected for overlap
    singleton_values: int         # values carried by only one certificate

    @property
    def linked_fingerprints(self) -> set[bytes]:
        """Every certificate placed into some group."""
        return {
            fingerprint
            for group in self.groups
            for fingerprint in group.fingerprints
        }

    @property
    def total_linked(self) -> int:
        """Total certificates linked by this field (Table 6, row 1)."""
        return sum(len(group) for group in self.groups)


def _naive_group_by_feature(
    dataset: ScanDataset,
    fingerprints: list[bytes],
    feature: Feature,
) -> dict[Hashable, list[bytes]]:
    """The pre-kernel path: re-extract the field from every certificate."""
    buckets: dict[Hashable, list[bytes]] = {}
    for fingerprint in fingerprints:
        value = linkable_value(dataset.certificate(fingerprint), feature)
        if value is None:
            continue
        buckets.setdefault(value, []).append(fingerprint)
    return buckets


def group_by_feature(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    feature: Feature,
) -> dict[Hashable, list[bytes]]:
    """Bucket certificates by their (linkable) value of one field."""
    fingerprints = list(fingerprints)
    matrix = dataset.feature_matrix
    column = matrix.linkable_ids[feature]
    rows = matrix.rows
    by_id: dict[int, list[bytes]] = {}
    for fingerprint in fingerprints:
        value_id = column[rows[fingerprint]]
        if value_id < 0:
            continue
        members = by_id.get(value_id)
        if members is None:
            by_id[value_id] = [fingerprint]
        else:
            members.append(fingerprint)
    values = matrix.values[feature]
    buckets = {values[value_id]: members for value_id, members in by_id.items()}
    if link_parity_enabled():
        naive = _naive_group_by_feature(dataset, fingerprints, feature)
        assert buckets == naive, f"grouping parity failure on {feature}"
    return buckets


def _max_pairwise_overlap(intervals: Sequence[tuple[int, int]]) -> int:
    """Largest lifetime overlap (in scans) between any pair of intervals.

    With intervals sorted by start, the worst overlap for interval *i* is
    against the earlier interval with the greatest end; tracking that
    running maximum end makes the check O(n log n) instead of O(n²).
    """
    ordered = sorted(intervals)
    worst = 0
    running_max_end: Optional[int] = None
    for start, end in ordered:
        if running_max_end is not None:
            overlap = min(running_max_end, end) - start + 1
            worst = max(worst, overlap)
        if running_max_end is None or end > running_max_end:
            running_max_end = end
    return worst


def _naive_link_on_feature(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    feature: Feature,
    overlap_allowance: int = 1,
) -> LinkResult:
    """The pre-kernel linking path, kept as the parity/bench reference."""
    buckets = _naive_group_by_feature(dataset, list(fingerprints), feature)
    groups: list[LinkedGroup] = []
    rejected = singletons = 0
    for value, members in buckets.items():
        if len(members) < 2:
            singletons += 1
            continue
        intervals = []
        for fingerprint in members:
            scan_idxs = dataset.scan_indexes_of(fingerprint)
            intervals.append((scan_idxs[0], scan_idxs[-1]))
        if _max_pairwise_overlap(intervals) > overlap_allowance:
            rejected += 1
            continue
        groups.append(
            LinkedGroup(
                feature=feature,
                value=value,
                fingerprints=tuple(sorted(members)),
            )
        )
    return LinkResult(
        feature=feature,
        groups=groups,
        rejected_values=rejected,
        singleton_values=singletons,
    )


def _record_link_metrics(groups: list[LinkedGroup], rejected: int,
                         singletons: int) -> None:
    """Bulk counter flush for one linking pass (no-op when obs is off)."""
    if not obs.enabled():
        return
    obs.inc("linking.groups_formed", len(groups))
    obs.inc("linking.certs_linked", sum(len(group) for group in groups))
    obs.inc("linking.groups_rejected_overlap", rejected)
    obs.inc("linking.values_singleton", singletons)


def link_on_feature(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    feature: Feature,
    overlap_allowance: int = 1,
) -> LinkResult:
    """Link one feature with the lifetime-overlap rule.

    ``overlap_allowance`` is the number of scans two member lifetimes may
    share (the paper allows exactly one); the ablation benchmark sweeps it.
    """
    buckets = group_by_feature(dataset, fingerprints, feature)
    cert_ids = dataset.columns.fingerprint_ids
    spans = dataset.intervals
    first_scan, last_scan = spans.first_scan, spans.last_scan
    groups: list[LinkedGroup] = []
    rejected = singletons = 0
    for value, members in buckets.items():
        if len(members) < 2:
            singletons += 1
            continue
        intervals = []
        for fingerprint in members:
            cert_id = cert_ids[fingerprint]
            intervals.append((first_scan[cert_id], last_scan[cert_id]))
        if link_parity_enabled():
            naive = [
                (scan_idxs[0], scan_idxs[-1])
                for scan_idxs in map(dataset.scan_indexes_of, members)
            ]
            assert intervals == naive, f"interval parity failure on {feature}"
        if _max_pairwise_overlap(intervals) > overlap_allowance:
            rejected += 1
            continue
        groups.append(
            LinkedGroup(
                feature=feature,
                value=value,
                fingerprints=tuple(sorted(members)),
            )
        )
    _record_link_metrics(groups, rejected, singletons)
    return LinkResult(
        feature=feature,
        groups=groups,
        rejected_values=rejected,
        singleton_values=singletons,
    )
