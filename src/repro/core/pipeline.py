"""§6.4 — The full linking pipeline and its evaluation.

Three stages, mirroring the paper:

1. :func:`evaluate_all_features` — link *every* candidate field
   independently over the deduplicated invalid population and score each
   with IP-/24-/AS-level consistency (Table 6), including the
   "uniquely linked" row (certificates only that field can link).
2. :func:`iterative_link` — §6.4.3: consider the usable fields (AS-level
   consistency above a threshold, excluding Not Before / Not After /
   Issuer+Serial when they fall below it) in decreasing AS-consistency
   order; link with field 1, remove the linked certificates, continue with
   field 2, and so on.  Produces the final device groups of Figure 10.
3. :func:`lifetime_improvement` — §6.4.4: how linking changes the apparent
   population: single-scan fraction drops (61 % → 50.7 % in the paper) and
   mean lifetime rises (95.4 → 132.3 days) once each linked group is
   treated as one device.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..obs import runtime as obs
from ..scanner.dataset import ScanDataset
from ..stats.cdf import CDF
from .consistency import ASLookup, ConsistencyReport, evaluate_link_result
from .features import Feature, link_parity_enabled
from .kernels import ConsistencyCache
from .linking import LinkedGroup, LinkResult, link_on_feature

__all__ = [
    "FeatureEvaluation",
    "evaluate_all_features",
    "PipelineResult",
    "iterative_link",
    "LifetimeImprovement",
    "lifetime_improvement",
    "DEFAULT_CONSISTENCY_THRESHOLD",
]

#: §6.4.3: fields below 90 % AS-level consistency are not used for linking.
DEFAULT_CONSISTENCY_THRESHOLD = 0.90

#: Evaluation order of Table 6 (columns left to right).
TABLE6_FEATURES: tuple[Feature, ...] = (
    Feature.PUBLIC_KEY,
    Feature.NOT_BEFORE,
    Feature.COMMON_NAME,
    Feature.NOT_AFTER,
    Feature.ISSUER_SERIAL,
    Feature.SAN_LIST,
    Feature.CRL,
    Feature.AIA,
    Feature.OCSP,
    Feature.OID,
)


@dataclass
class FeatureEvaluation:
    """One Table 6 column: linking plus its consistency scores."""

    feature: Feature
    result: LinkResult
    consistency: ConsistencyReport
    uniquely_linked: int = 0

    @property
    def total_linked(self) -> int:
        return self.result.total_linked


def _evaluate_one_feature(
    dataset: ScanDataset,
    fingerprints: list[bytes],
    feature: Feature,
    overlap_allowance: int,
    as_of: ASLookup,
    cache: Optional[ConsistencyCache] = None,
) -> FeatureEvaluation:
    """One Table 6 column: link the field, then score its consistency."""
    result = link_on_feature(dataset, fingerprints, feature, overlap_allowance)
    consistency = evaluate_link_result(dataset, result, as_of, cache)
    return FeatureEvaluation(feature, result, consistency)


def _build_kernels(dataset: ScanDataset) -> None:
    """Force the columnar kernels (index, intervals, feature matrix)."""
    dataset.index
    dataset.intervals
    dataset.feature_matrix


# Per-feature passes are independent, so they fan out over a process
# pool; the corpus, population, and prebuilt kernels ship once per worker
# via the pool initializer rather than once per feature.  Each worker
# keeps its own ConsistencyCache, shared across its features.
_EVAL_CONTEXT: Optional[tuple] = None


def _init_eval_worker(
    dataset: ScanDataset,
    fingerprints: list[bytes],
    overlap_allowance: int,
    as_of: ASLookup,
    obs_enabled: bool = False,
) -> None:
    global _EVAL_CONTEXT
    obs.install_worker(obs_enabled)
    _build_kernels(dataset)  # no-op when they arrived with the pickle
    _EVAL_CONTEXT = (
        dataset, fingerprints, overlap_allowance, as_of, ConsistencyCache()
    )


def _evaluate_feature_task(
    feature: Feature,
) -> "tuple[FeatureEvaluation, Optional[dict]]":
    dataset, fingerprints, overlap_allowance, as_of, cache = _EVAL_CONTEXT
    mark = obs.task_mark()
    with obs.span(f"link/feature={feature.name}"):
        evaluation = _evaluate_one_feature(
            dataset, fingerprints, feature, overlap_allowance, as_of, cache
        )
    return evaluation, obs.task_delta(mark)


def evaluate_all_features(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    as_of: ASLookup,
    features: Sequence[Feature] = TABLE6_FEATURES,
    overlap_allowance: int = 1,
    workers: int = 1,
) -> dict[Feature, FeatureEvaluation]:
    """Produce Table 6: every field linked and scored independently.

    ``workers > 1`` runs the per-feature passes over a process pool; each
    pass is a pure function of (corpus, population, feature), so results
    are identical to the serial path in every detail.
    """
    fingerprints = list(fingerprints)
    evaluations: dict[Feature, FeatureEvaluation] = {}
    _build_kernels(dataset)  # before any fork, so workers inherit them
    if workers <= 1 or len(features) <= 1:
        cache = ConsistencyCache()  # shared across the features
        for feature in features:
            with obs.span(f"link/feature={feature.name}"):
                evaluations[feature] = _evaluate_one_feature(
                    dataset, fingerprints, feature, overlap_allowance, as_of,
                    cache,
                )
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(features)),
            initializer=_init_eval_worker,
            initargs=(dataset, fingerprints, overlap_allowance, as_of,
                      obs.enabled()),
        ) as pool:
            for feature, (evaluation, delta) in zip(
                features, pool.map(_evaluate_feature_task, features)
            ):
                evaluations[feature] = evaluation
                obs.absorb(delta)
    obs.inc("pipeline.features_evaluated", len(evaluations))
    # "Uniquely linked": certificates linked by exactly one field.
    membership: dict[bytes, list[Feature]] = {}
    for feature, evaluation in evaluations.items():
        for fingerprint in evaluation.result.linked_fingerprints:
            membership.setdefault(fingerprint, []).append(feature)
    for feature, evaluation in evaluations.items():
        evaluation.uniquely_linked = sum(
            1 for linked_by in membership.values() if linked_by == [feature]
        )
    return evaluations


@dataclass
class PipelineResult:
    """Final device groups from the iterative §6.4.3 linking."""

    groups: list[LinkedGroup]
    field_order: tuple[Feature, ...]
    #: Fields excluded for insufficient AS-level consistency.
    excluded: tuple[Feature, ...] = ()
    input_size: int = 0

    @property
    def linked_certificates(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def linked_fraction(self) -> float:
        """Paper: 39.4 % of invalid certificates end up linked."""
        return self.linked_certificates / self.input_size if self.input_size else 0.0

    def linked_fingerprints(self) -> set[bytes]:
        return {fp for group in self.groups for fp in group.fingerprints}

    def group_size_cdf(self, feature: Optional[Feature] = None) -> CDF:
        """Figure 10: distribution of group sizes, overall or per field."""
        sizes = [
            len(group)
            for group in self.groups
            if feature is None or group.feature is feature
        ]
        return CDF.of(sizes)

    def groups_of(self, feature: Feature) -> list[LinkedGroup]:
        return [group for group in self.groups if group.feature is feature]


def iterative_link(
    dataset: ScanDataset,
    fingerprints: Iterable[bytes],
    as_of: ASLookup,
    evaluations: Optional[dict[Feature, FeatureEvaluation]] = None,
    threshold: float = DEFAULT_CONSISTENCY_THRESHOLD,
    overlap_allowance: int = 1,
    field_order: Optional[Sequence[Feature]] = None,
) -> PipelineResult:
    """§6.4.3: link fields in decreasing AS-consistency order.

    ``field_order`` overrides the computed order (used by the field-order
    ablation); otherwise the order comes from ``evaluations`` (computed
    here when not supplied), keeping only fields at or above ``threshold``.
    """
    fingerprints = list(fingerprints)
    excluded: tuple[Feature, ...] = ()
    if field_order is None:
        if evaluations is None:
            evaluations = evaluate_all_features(
                dataset, fingerprints, as_of, overlap_allowance=overlap_allowance
            )
        usable = [
            evaluation
            for evaluation in evaluations.values()
            if evaluation.consistency.as_level >= threshold
            and evaluation.total_linked > 0
        ]
        usable.sort(key=lambda e: e.consistency.as_level, reverse=True)
        field_order = [evaluation.feature for evaluation in usable]
        excluded = tuple(
            feature for feature in evaluations if feature not in field_order
        )

    remaining = set(fingerprints)
    groups: list[LinkedGroup] = []
    for feature in field_order:
        with obs.span(f"pipeline/field={feature.name}"):
            result = link_on_feature(
                dataset, remaining, feature, overlap_allowance
            )
        groups.extend(result.groups)
        remaining -= result.linked_fingerprints
    if obs.enabled():
        obs.inc("pipeline.fields_used", len(tuple(field_order)))
        obs.inc("pipeline.fields_excluded", len(excluded))
        obs.inc("pipeline.certs_linked", sum(len(group) for group in groups))
        obs.inc("pipeline.certs_unlinked", len(remaining))
        for group in groups:
            obs.observe("pipeline.group_size", len(group))
    return PipelineResult(
        groups=groups,
        field_order=tuple(field_order),
        excluded=excluded,
        input_size=len(fingerprints),
    )


@dataclass(frozen=True)
class LifetimeImprovement:
    """§6.4.4: apparent-population statistics before vs after linking."""

    single_scan_fraction_before: float
    single_scan_fraction_after: float
    mean_lifetime_before: float
    mean_lifetime_after: float


def _naive_lifetime_improvement(
    dataset: ScanDataset,
    pipeline: PipelineResult,
    fingerprints: list[bytes],
) -> LifetimeImprovement:
    """The pre-kernel path: two index walks per unlinked fingerprint."""
    before = [dataset.lifetime_days(fp) for fp in fingerprints]
    before_single = [len(dataset.scan_indexes_of(fp)) == 1 for fp in fingerprints]

    linked = pipeline.linked_fingerprints()
    after: list[int] = []
    after_single: list[bool] = []
    for fingerprint in fingerprints:
        if fingerprint not in linked:
            after.append(dataset.lifetime_days(fingerprint))
            after_single.append(len(dataset.scan_indexes_of(fingerprint)) == 1)
    for group in pipeline.groups:
        scan_idxs = sorted(
            {idx for fp in group.fingerprints for idx in dataset.scan_indexes_of(fp)}
        )
        first_day = dataset.scans[scan_idxs[0]].day
        last_day = dataset.scans[scan_idxs[-1]].day
        after.append(last_day - first_day + 1)
        after_single.append(len(scan_idxs) == 1)

    return LifetimeImprovement(
        single_scan_fraction_before=sum(before_single) / len(before_single),
        single_scan_fraction_after=sum(after_single) / len(after_single),
        mean_lifetime_before=sum(before) / len(before),
        mean_lifetime_after=sum(after) / len(after),
    )


def lifetime_improvement(
    dataset: ScanDataset,
    pipeline: PipelineResult,
    fingerprints: Iterable[bytes],
) -> LifetimeImprovement:
    """Treat each linked group as one device and recompute lifetimes.

    'Before' is per certificate; 'after' replaces each group's members with
    a single unit spanning from the group's first to last sighting, while
    unlinked certificates keep their own lifetimes.  Lifetimes, single-scan
    flags, and per-group spans all come from the (first, last) scan-index
    arrays of ``dataset.intervals`` in one pass per fingerprint — a group's
    first (last) sighting is the min (max) of its members' interval
    endpoints, and the merged unit is single-scan exactly when those
    coincide.
    """
    fingerprints = list(fingerprints)
    cert_ids = dataset.columns.fingerprint_ids
    spans = dataset.intervals
    first_scan, last_scan, n_scans = spans.first_scan, spans.last_scan, spans.n_scans
    days = [scan.day for scan in dataset.scans]

    linked = pipeline.linked_fingerprints()
    before: list[int] = []
    before_single: list[bool] = []
    after: list[int] = []
    after_single: list[bool] = []
    for fingerprint in fingerprints:
        cert_id = cert_ids[fingerprint]
        lifetime = days[last_scan[cert_id]] - days[first_scan[cert_id]] + 1
        single = n_scans[cert_id] == 1
        before.append(lifetime)
        before_single.append(single)
        if fingerprint not in linked:
            after.append(lifetime)
            after_single.append(single)
    for group in pipeline.groups:
        member_ids = [cert_ids[fp] for fp in group.fingerprints]
        first = min(first_scan[cert_id] for cert_id in member_ids)
        last = max(last_scan[cert_id] for cert_id in member_ids)
        after.append(days[last] - days[first] + 1)
        after_single.append(first == last)

    result = LifetimeImprovement(
        single_scan_fraction_before=sum(before_single) / len(before_single),
        single_scan_fraction_after=sum(after_single) / len(after_single),
        mean_lifetime_before=sum(before) / len(before),
        mean_lifetime_after=sum(after) / len(after),
    )
    if link_parity_enabled():
        naive = _naive_lifetime_improvement(dataset, pipeline, fingerprints)
        assert result == naive, f"lifetime parity: {result} != {naive}"
    return result
