"""Figure 11 + §7.4 — inferring ISP address-reassignment policies.

Paper: 2,517 of 4,467 ASes (56.3 %) assign static addresses to ≥90 % of
their devices (Comcast, AT&T); 15 ASes reassign ≥75 % of devices between
every scan (Deutsche Telekom, Telefonica Venezolana, Tim Celular, BSES).
"""

from repro.stats.tables import format_pct, render_table


def test_fig11_reassignment_policies(benchmark, paper_synthetic, paper_study, record_result):
    registry = paper_synthetic.world.registry

    report = benchmark.pedantic(
        lambda: paper_study.reassignment(min_devices_per_as=10),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Figure 11 — per-AS static-assignment fraction",
        f"ASes with >=10 tracked devices: {len(report.static_fraction_by_as)}"
        f" (paper: 4,467)",
        f"ASes >=90% static: {format_pct(report.fraction_of_ases_mostly_static())}"
        f" (paper: 56.3%)",
        "",
        "CDF series (static fraction → share of ASes):",
    ]
    for x in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        lines.append(f"  <= {x:4.2f}: {format_pct(report.cdf.at(x))}")
    lines.append("")
    lines.append("highly dynamic ASes (paper: Deutsche Telekom, Telefonica VEN, Tim, BSES):")
    rows = []
    for asn in report.highly_dynamic_ases:
        info = registry.get(asn)
        rows.append([f"AS{asn}", info.name if info else "?",
                     info.country_at(5000) if info else "?"])
    lines.append(render_table(["asn", "name", "country"], rows) if rows else "  (none)")
    record_result("\n".join(lines), "fig11_reassignment")

    fractions = report.static_fraction_by_as
    # Shape: bimodal — many mostly-static ASes, a few fully dynamic.
    assert report.fraction_of_ases_mostly_static() > 0.35
    assert report.highly_dynamic_ases, "daily-churn ISPs must be detected"
    # Named networks behave as engineered.
    if 3320 in fractions:
        assert fractions[3320] < 0.2          # Deutsche Telekom: dynamic
    if 7922 in fractions:
        assert fractions[7922] > 0.8          # Comcast: static
