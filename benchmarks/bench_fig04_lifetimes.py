"""Figure 4 — CDF of observed lifetimes, valid vs invalid.

Paper: valid median 274 days; invalid median one day — ~60 % of invalid
certificates are seen in exactly one scan.
"""

from repro.core.analysis.longevity import lifetimes
from repro.stats.tables import format_pct, render_table


def test_fig04_lifetimes(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    invalid, valid = benchmark.pedantic(
        lambda: (
            lifetimes(dataset, paper_study.invalid),
            lifetimes(dataset, paper_study.valid),
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        ["valid median", "274d", f"{valid.median_days:.0f}d"],
        ["invalid median", "1d", f"{invalid.median_days:.0f}d"],
        ["invalid single-scan", "~60%", format_pct(invalid.single_scan_fraction)],
    ]
    lines = [
        "Figure 4 — observed lifetimes",
        render_table(["statistic", "paper", "ours"], rows),
        "",
        "CDF series (days → fraction):",
    ]
    for days in (1, 8, 30, 90, 180, 274, 365, 600, 1000):
        lines.append(
            f"  {days:>5d}d  valid {valid.cdf.at(days):.3f}  invalid {invalid.cdf.at(days):.3f}"
        )
    record_result("\n".join(lines), "fig04_lifetimes")

    assert invalid.median_days == 1
    assert 150 <= valid.median_days <= 500
    assert 0.45 < invalid.single_scan_fraction < 0.75
    assert invalid.cdf.at(30) > valid.cdf.at(30)     # invalid die young
