"""Table 1 + §5.3 — top issuers and signing-key concentration.

Paper (Table 1): valid certificates come from the big commercial CAs
(GoDaddy, RapidSSL, PositiveSSL, GeoTrust); invalid ones from device
vendors (www.lancom-systems.de, remotewd.com, VMware), the 192.168.1.1
Common Name, and the empty string.

Paper (§5.3): five signing keys span half of all valid certificates
(1,477 parent keys total); the invalid AKI-bearing population has far
more parent keys (1.7M) with the top five covering only ~37 %.
"""

from repro.core.analysis.issuers import (
    private_ip_issuer_count,
    self_signed_fraction,
    signing_key_concentration,
    top_issuers,
)
from repro.stats.tables import format_count, format_pct, render_table

PAPER_INVALID_ISSUERS = {
    "www.lancom-systems.de",
    "192.168.1.1",
    "(Empty string)",
    "remotewd.com",
    "VMware",
}


def test_tab1_top_issuers(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    invalid_rows, valid_rows = benchmark.pedantic(
        lambda: (
            top_issuers(dataset, paper_study.invalid, n=8),
            top_issuers(dataset, paper_study.valid, n=5),
        ),
        rounds=3,
        iterations=1,
    )

    lines = [
        "Table 1 — top issuers",
        "",
        "valid (paper: GoDaddy, RapidSSL, PositiveSSL, GoDaddy G2, GeoTrust):",
        render_table(
            ["issuer", "certs"],
            [[cn, format_count(count)] for cn, count in valid_rows],
        ),
        "",
        "invalid (paper: lancom, 192.168.1.1, empty, remotewd.com, VMware):",
        render_table(
            ["issuer", "certs"],
            [[cn, format_count(count)] for cn, count in invalid_rows],
        ),
        "",
        f"self-signed share of invalid: "
        f"{format_pct(self_signed_fraction(dataset, paper_study.invalid))} (paper 88.0%)",
        f"invalid certs with 192.168/16 issuer: "
        f"{format_count(private_ip_issuer_count(dataset, paper_study.invalid))}"
        f" (paper 3,353,464 of 70M)",
    ]
    record_result("\n".join(lines), "tab1_top_issuers")

    valid_names = " ".join(cn for cn, _ in valid_rows)
    assert "Go Daddy" in valid_names and "RapidSSL" in valid_names
    invalid_names = {cn for cn, _ in invalid_rows}
    # At least four of the paper's five invalid issuers in our top-8.
    assert len(PAPER_INVALID_ISSUERS & invalid_names) >= 4
    assert self_signed_fraction(dataset, paper_study.invalid) > 0.75


def test_tab1_signing_key_concentration(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    valid_keys, invalid_keys = benchmark.pedantic(
        lambda: (
            signing_key_concentration(dataset, paper_study.valid),
            signing_key_concentration(dataset, paper_study.invalid),
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        ["valid: keys for half the certs", "5", valid_keys.keys_for_half],
        ["valid: distinct parent keys", "1,477", format_count(valid_keys.n_parent_keys)],
        ["invalid: top-5 key coverage", "37%", format_pct(invalid_keys.top5_coverage)],
        ["invalid: distinct parent keys", "1.7M", format_count(invalid_keys.n_parent_keys)],
    ]
    lines = ["§5.3 — signing-key concentration",
             render_table(["statistic", "paper", "ours"], rows)]
    record_result("\n".join(lines), "tab1_key_concentration")

    # Shape: valid issuance is concentrated in a handful of keys; the
    # invalid parent-key space is far more diverse.
    assert valid_keys.keys_for_half <= 8
    assert invalid_keys.n_parent_keys > valid_keys.n_parent_keys
    assert invalid_keys.top5_coverage < 0.7
