"""Table 2 — AS-type breakdown of certificate origins.

Paper: invalid certificates come almost exclusively from transit/access
networks (94.1 %); valid ones split between transit/access (46.6 %) and
content networks (42.9 %).
"""

from repro.core.analysis.hosts import as_type_breakdown
from repro.net.asn import ASType
from repro.stats.tables import format_pct, render_table

PAPER = {
    ASType.TRANSIT_ACCESS: (0.466, 0.941),
    ASType.CONTENT: (0.429, 0.047),
    ASType.ENTERPRISE: (0.078, 0.015),
    ASType.UNKNOWN: (0.026, 0.017),
}


def test_tab2_as_types(benchmark, paper_synthetic, paper_study, record_result):
    dataset = paper_study.dataset
    world = paper_synthetic.world

    valid_breakdown, invalid_breakdown = benchmark.pedantic(
        lambda: (
            as_type_breakdown(dataset, paper_study.valid,
                              world.routing.origin_as, world.registry),
            as_type_breakdown(dataset, paper_study.invalid,
                              world.routing.origin_as, world.registry),
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for as_type in ASType:
        paper_valid, paper_invalid = PAPER[as_type]
        rows.append(
            [
                as_type.value,
                format_pct(paper_valid), format_pct(valid_breakdown[as_type]),
                format_pct(paper_invalid), format_pct(invalid_breakdown[as_type]),
            ]
        )
    lines = [
        "Table 2 — AS types",
        render_table(
            ["AS type", "valid (paper)", "valid (ours)",
             "invalid (paper)", "invalid (ours)"],
            rows,
        ),
    ]
    record_result("\n".join(lines), "tab2_as_types")

    # Shape: invalid is transit/access-dominated; content networks host
    # valid certificates almost exclusively.
    assert invalid_breakdown[ASType.TRANSIT_ACCESS] > 0.80
    assert invalid_breakdown[ASType.CONTENT] < 0.10
    assert valid_breakdown[ASType.CONTENT] > 0.5 * valid_breakdown[ASType.TRANSIT_ACCESS]
    assert valid_breakdown[ASType.CONTENT] > invalid_breakdown[ASType.CONTENT]
