"""Figure 8 + §5.4 — AS diversity of the two populations.

Paper: 18 % of invalid certificates originate from a single AS (10 % of
valid); 165 ASes cover 70 % of invalid certificates while 500 are needed
for 70 % of valid — the invalid population is *less* AS-diverse despite
being seven times larger.
"""

from repro.core.analysis.hosts import as_diversity
from repro.stats.tables import format_pct, render_table


def test_fig08_as_diversity(benchmark, paper_synthetic, paper_study, record_result):
    dataset = paper_study.dataset
    as_of = paper_synthetic.world.routing.origin_as

    invalid, valid = benchmark.pedantic(
        lambda: (
            as_diversity(dataset, paper_study.invalid, as_of),
            as_diversity(dataset, paper_study.valid, as_of),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["largest AS share of invalid", "18%", format_pct(invalid.largest_as_share)],
        ["largest AS share of valid", "10%", format_pct(valid.largest_as_share)],
        ["ASes for 70% of invalid", "165", invalid.ases_for_70pct],
        ["ASes for 70% of valid", "500", valid.ases_for_70pct],
        ["total invalid-hosting ASes", "", invalid.n_ases],
        ["total valid-hosting ASes", "", valid.n_ases],
    ]
    lines = [
        "Figure 8 — AS diversity",
        render_table(["statistic", "paper", "ours"], rows),
    ]
    record_result("\n".join(lines), "fig08_as_diversity")

    # Shape: invalid concentrated in fewer ASes than valid.
    assert invalid.ases_for_70pct < valid.ases_for_70pct
    assert invalid.largest_as_share > 0.05
    # Most certificates come from a single AS each.
    assert invalid.ases_per_cert_cdf.median == 1
