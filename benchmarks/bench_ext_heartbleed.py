"""Extension — Heartbleed-style incident forensics on the valid side.

§5.2 quotes Zhang et al.: about half of routine valid reissues keep the key
pair, but during the Heartbleed response only 4.1 % of (emergency)
reissues did — the rest correctly rekeyed.  This bench enables the world's
Heartbleed event (disclosure 2014-04-07, inside the Rapid7 era), mines
reissue chains from the scans alone, and checks both signatures: the
reissue-rate spike and the key-retention collapse inside the window.
"""

import datetime

import pytest

from repro.core.analysis.reissues import incident_window, valid_reissues
from repro.datasets.synthetic import generate
from repro.internet.population import WorldConfig
from repro.simtime import date_to_day, format_day
from repro.stats.tables import format_pct, render_table
from repro.study import Study

HEARTBLEED_DAY = date_to_day(datetime.date(2014, 4, 7))


@pytest.fixture(scope="module")
def heartbleed_bundle():
    config = WorldConfig(
        seed=2016,
        n_devices=120,
        n_websites=700,
        n_generic_access=40,
        n_enterprise=10,
        n_hosting=10,
        heartbleed_day=HEARTBLEED_DAY,
        unused_roots=5,
    )
    return generate(config, scan_stride=1)


def test_ext_heartbleed_forensics(benchmark, heartbleed_bundle, record_result):
    study = Study.from_synthetic(heartbleed_bundle)
    dataset = study.dataset

    def run():
        reissues = valid_reissues(dataset, study.valid)
        window = incident_window(
            reissues,
            HEARTBLEED_DAY,
            window_days=45,
            first_day=dataset.scans[0].day,
            last_day=dataset.scans[-1].day,
        )
        return reissues, window

    reissues, window = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["event window", "",
         f"{format_day(window.window_start)} .. {format_day(window.window_end)}"],
        ["reissues in window / outside", "",
         f"{window.reissues_in_window} / {window.reissues_outside}"],
        ["reissue-rate spike", "large",
         f"{window.spike_factor:.1f}x baseline"],
        ["key retention in window", "4.1%",
         format_pct(window.key_retention_in_window)],
        ["key retention baseline", "~50%",
         format_pct(window.key_retention_outside)],
    ]
    lines = [
        "Extension — Heartbleed incident forensics (Zhang et al. / §5.2)",
        f"reissue chains mined from scans: {len(reissues)}",
        render_table(["statistic", "paper context", "ours"], rows),
    ]
    record_result("\n".join(lines), "ext_heartbleed")

    # The two Zhang signatures.
    assert window.spike_factor > 3.0
    assert window.key_retention_in_window < 0.20
    assert 0.30 < window.key_retention_outside < 0.70


def test_ext_heartbleed_disabled_by_default(benchmark, paper_study):
    # The calibrated paper corpus has no event: no comparable spike exists.
    dataset = paper_study.dataset

    def run():
        reissues = valid_reissues(dataset, paper_study.valid)
        return incident_window(
            reissues,
            HEARTBLEED_DAY,
            window_days=45,
            first_day=dataset.scans[0].day,
            last_day=dataset.scans[-1].day,
        )

    window = benchmark.pedantic(run, rounds=1, iterations=1)
    assert window.spike_factor < 3.0
