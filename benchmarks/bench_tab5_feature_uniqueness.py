"""Table 5 + §6.3.1 — non-uniqueness of linkable features.

Paper: Not Before 67.7 %, Common Name 67.5 %, Not After 61.4 %,
Public Key 47.0 %, SAN list 19.6 %, Issuer+Serial 4.2 % non-unique —
and the rare extensions are almost always absent (99.2 % no CRL,
99.3 % no AIA, 99.9 % no OCSP/OID).
"""

from repro.core.features import Feature, absence_rates, non_uniqueness_census
from repro.stats.tables import format_pct, render_table

PAPER_NON_UNIQUE = {
    Feature.NOT_BEFORE: 0.677,
    Feature.COMMON_NAME: 0.675,
    Feature.NOT_AFTER: 0.614,
    Feature.PUBLIC_KEY: 0.470,
    Feature.SAN_LIST: 0.196,
    Feature.ISSUER_SERIAL: 0.042,
}

PAPER_ABSENT = {
    Feature.CRL: 0.992,
    Feature.AIA: 0.993,
    Feature.OCSP: 0.999,
    Feature.OID: 0.999,
}


def test_tab5_feature_census(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)

    census, absent = benchmark.pedantic(
        lambda: (
            non_uniqueness_census(dataset, fingerprints),
            absence_rates(dataset, fingerprints),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [feature.value, format_pct(paper_share), format_pct(census[feature])]
        for feature, paper_share in PAPER_NON_UNIQUE.items()
    ]
    absent_rows = [
        [feature.value, format_pct(paper_share), format_pct(absent[feature])]
        for feature, paper_share in PAPER_ABSENT.items()
    ]
    lines = [
        "Table 5 — % of carrying certificates with a non-unique value",
        render_table(["feature", "paper", "ours"], rows),
        "",
        "rare-extension absence rates:",
        render_table(["feature", "paper absent", "ours absent"], absent_rows),
    ]
    record_result("\n".join(lines), "tab5_feature_uniqueness")

    # Shape: IN+SN is the least shared feature by far; CN/PK heavily
    # shared; rare extensions nearly always absent.
    assert census[Feature.ISSUER_SERIAL] < 0.5 * census[Feature.PUBLIC_KEY]
    assert census[Feature.COMMON_NAME] > 0.4
    assert census[Feature.PUBLIC_KEY] > 0.3
    for feature in PAPER_ABSENT:
        assert absent[feature] > 0.95
