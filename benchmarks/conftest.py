"""Benchmark harness fixtures.

The full paper-fidelity dataset (222-scan replica schedule, 2,500 devices,
850 websites) is built once per session; every bench then times its own
analysis stage and writes the paper-vs-measured rows to
``benchmarks/results/<experiment>.txt``.
"""

import pathlib

import pytest

from repro.datasets.synthetic import generate, paper
from repro.internet.population import WorldConfig
from repro.study import Study

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is a long paper-fidelity run.

    Marking the whole directory lets the default CI job deselect it with
    ``-m "not benchmark"`` while ``pytest benchmarks/`` still runs all of it.
    """
    this_dir = pathlib.Path(__file__).parent
    for item in items:
        if this_dir in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark)
    # The fleet bench saturates the box — four shard processes, a router,
    # and two loadgen client loops — so it runs after every single-process
    # bench: the knife-edge timing gates (kernel speedups, obs overhead)
    # must not inherit its scheduler and page-cache wake.
    items.sort(key=lambda item: "bench_perf_fleet" in str(item.fspath))


@pytest.fixture(scope="session")
def paper_synthetic():
    """The full-fidelity synthetic corpus (built once, ~40 s)."""
    return paper()


@pytest.fixture(scope="session")
def paper_study(paper_synthetic):
    """Study over the paper-scale corpus; stages cache across benches."""
    return Study.from_synthetic(paper_synthetic)


@pytest.fixture(scope="session")
def handshake_synthetic():
    """A handshake-collecting corpus for the §6.3 future-work extension."""
    config = WorldConfig(
        seed=2016, n_devices=900, n_websites=310, n_generic_access=60,
        n_enterprise=15, n_hosting=10,
    )
    return generate(config, scan_stride=3, collect_handshakes=True)


@pytest.fixture(scope="session")
def handshake_study(handshake_synthetic):
    return Study.from_synthetic(handshake_synthetic)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir, request):
    """Write one experiment's rendered output next to the benchmarks."""

    def write(text: str, name: str = None) -> None:
        stem = name or request.node.name.replace("test_", "").replace("[", "_").rstrip("]")
        path = results_dir / f"{stem}.txt"
        path.write_text(text + "\n")
        # Also echo, so `pytest -s benchmarks/` shows the tables inline.
        print(f"\n--- {stem} ---\n{text}")

    return write
