"""§6.4.2 — the per-field case studies behind Table 6's numbers.

Paper narratives reproduced here:

* **Public Key / FRITZ!Box** — certificates with the ``fritz.fonwlan.box``
  SAN are 51.9 % of the PK-linked population with 27 % IP-level but 99 %
  AS-level consistency (German daily churn); removing them lifts PK's
  IP-level consistency to 69.4 %.
* **IN+SN / PlayBook** — ``PlayBook: <MAC>`` issuers are 23.1 % of the
  IN+SN-linked population; removing them lifts IP-level consistency to
  71.9 %.
* **Common Name domains** — 21 % of CN-linked certificates are
  URL-formatted; myfritz.net is the largest second-level domain (16 %),
  with 8 % more containing 'dyndns'/'selfhost'.
"""

from repro.core.casestudies import (
    common_name_domains,
    fritzbox_predicate,
    playbook_predicate,
    split_consistency,
)
from repro.core.features import Feature
from repro.stats.tables import format_count, format_pct, render_table


def test_case_study_fritzbox_public_key(benchmark, paper_study, record_result):
    evaluations = paper_study.feature_evaluations()
    pk = evaluations[Feature.PUBLIC_KEY]

    split = benchmark.pedantic(
        lambda: split_consistency(
            paper_study.dataset, pk.result, fritzbox_predicate, paper_study.as_of
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["FRITZ!Box share of PK-linked", "51.9%", format_pct(split.matching_fraction)],
        ["FRITZ!Box IP-consistency", "27%", format_pct(split.matching_ip)],
        ["FRITZ!Box AS-consistency", "99%", format_pct(split.matching_as)],
        ["non-FRITZ!Box IP-consistency", "69.4%", format_pct(split.rest_ip)],
    ]
    lines = ["§6.4.2 — Public Key: the FRITZ!Box case study",
             render_table(["statistic", "paper", "ours"], rows)]
    record_result("\n".join(lines), "case_study_fritzbox_pk")

    # The signature: a large churn-hosted subset with terrible IP-level
    # but near-perfect AS-level consistency, masking a much better rest.
    assert split.matching_fraction > 0.25
    assert split.matching_as > 0.9
    assert split.matching_ip < 0.5
    assert split.rest_ip > split.matching_ip


def test_case_study_playbook_issuer_serial(benchmark, paper_study, record_result):
    evaluations = paper_study.feature_evaluations()
    insn = evaluations[Feature.ISSUER_SERIAL]

    split = benchmark.pedantic(
        lambda: split_consistency(
            paper_study.dataset, insn.result, playbook_predicate, paper_study.as_of
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["PlayBook share of IN+SN-linked", "23.1%", format_pct(split.matching_fraction)],
        ["PlayBook IP-consistency", "(low, mobile)", format_pct(split.matching_ip)],
        ["non-PlayBook IP-consistency", "71.9%", format_pct(split.rest_ip)],
    ]
    lines = ["§6.4.2 — IN+SN: the PlayBook case study",
             render_table(["statistic", "paper", "ours"], rows)]
    record_result("\n".join(lines), "case_study_playbook_insn")

    # PlayBooks dominate IN+SN linking and are mobile (low IP-level).
    assert split.matching_fraction > 0.5
    assert split.matching_ip < 0.3


def test_case_study_common_name_domains(benchmark, paper_study, record_result):
    evaluations = paper_study.feature_evaluations()
    cn = evaluations[Feature.COMMON_NAME]

    domains = benchmark.pedantic(
        lambda: common_name_domains(paper_study.dataset, cn.result),
        rounds=1,
        iterations=1,
    )

    lines = [
        "§6.4.2 — Common Name: dynamic-DNS breakdown",
        f"URL-formatted CN-linked certificates: "
        f"{format_count(domains.url_formatted)} "
        f"({format_pct(domains.url_fraction)}; paper 21.0%)",
        f"'dyndns'/'selfhost' certificates: "
        f"{format_count(domains.dyndns_certificates)} (paper 8%)",
        "",
        "top second-level domains (paper: myfritz.net at 16%):",
        render_table(
            ["second-level domain", "certs"],
            [[sld, format_count(count)]
             for sld, count in domains.by_second_level.items()],
        ),
    ]
    record_result("\n".join(lines), "case_study_cn_domains")

    assert domains.url_formatted > 0
    assert "myfritz.net" in domains.by_second_level
    assert domains.dyndns_certificates > 0
    # myfritz.net is the largest dynamic-DNS second-level domain.
    dyndns_slds = {
        sld: count for sld, count in domains.by_second_level.items()
        if sld in ("myfritz.net", "dyndns.org", "selfhost.de")
    }
    assert max(dyndns_slds, key=dyndns_slds.get) == "myfritz.net"
