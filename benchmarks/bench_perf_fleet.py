"""The sharded serve fleet at paper scale: parity first, then throughput.

The PR 10 acceptance bench: ``repro split`` partitions the paper-scale
corpus into a K=4 fleet, each shard boots as a real ``repro serve``
process, and the :class:`FleetRouter` front tier must (a) answer every
sampled endpoint — point lookups, scatter-gather merges, and error
paths — **byte-identically** to a single server over the whole corpus,
and (b) sustain mixed-traffic throughput at >= 1.5x the single server
on a 4-core machine (the gate scales with the measured core count; on
one core the speedup is recorded but not gated, because four shard
processes cannot out-run one server without parallelism to spend).

The parity gate is the load-bearing one: a fleet that is fast but
drifts from the single-server answer is silently wrong, so parity is
asserted before any throughput number is even measured, and every gate
is asserted before the result file is written.  Writes the ``fleet``
section of ``results/BENCH_perf.json`` and ``results/perf_fleet.txt``.
"""

import asyncio
import gc
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from bench_perf_serve import CLIENTS, _multi_client
from bench_perf_substrates import _update_bench_json
from repro.core.features import link_parity_enabled
from repro.io import (
    AnalysisEnvironment,
    save_dataset,
    save_environment,
    split_corpus,
    verify_fleet,
)
from repro.serve import (
    FleetRouter,
    QueryEngine,
    QueryServer,
    boot_fleet,
    shutdown_fleet,
)
from repro.serve.loadgen import build_workload

SHARDS = 4
GATE_FLEET_SPEEDUP = 1.5


def _fleet_gate() -> float | None:
    """The fleet throughput gate, scaled to real parallelism.

    Four shard processes plus a router can only beat one server when
    there are cores to run them on: >= 4 cores takes the full 1.5x
    gate; 2-3 cores degrade proportionally down to 1.0x (the fleet
    must at least not lose once routing overhead is paid); a single
    core records the speedup without gating it.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return None
    return min(GATE_FLEET_SPEEDUP, max(1.0, cpus / 2.67))


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _parity_paths(sample):
    paths = ["/census", "/census/valid", "/census/invalid", "/sample"]
    paths += [f"/cert/{fp}" for fp in sample["fingerprints"][:40]]
    paths += [f"/key/{key}/group" for key in sample["keys"][:40]]
    paths += [f"/track/{ip}" for ip in sample["ips"][:40]]
    paths += [f"/as/{asn}/reassignment" for asn in sample["asns"][:10]]
    paths += [
        "/cert/nothex",
        "/cert/" + "00" * 32,
        "/key/feedbeef/group",
        "/track/not-an-ip",
        "/as/notanas/reassignment",
        "/certainly/not/served",
    ]
    return paths


def test_perf_fleet(paper_synthetic, results_dir, record_result, tmp_path):
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "fleet timings would be meaningless")

    corpus = tmp_path / "corpus.rpz"
    environment = tmp_path / "env.rpe"
    cache_dir = tmp_path / "cache"
    fleet_dir = tmp_path / "fleet"
    save_dataset(paper_synthetic.scans, corpus)
    save_environment(
        AnalysisEnvironment.of_world(paper_synthetic.world), environment
    )

    # --- split: O(bytes) shard emission off one warmed analysis --------------
    gc.collect()
    started = time.perf_counter()
    manifest = split_corpus(
        corpus, environment, fleet_dir,
        shards=SHARDS, cache_dir=str(cache_dir),
    )
    split_seconds = time.perf_counter() - started
    verify_fleet(manifest)

    # --- single-server baseline over the whole corpus ------------------------
    engine = QueryEngine.open(corpus, environment, cache_dir=str(cache_dir))
    engine.warm()
    n_certs = len(engine.dataset.certificates)
    n_rows = engine.dataset.n_observations

    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    single = QueryServer(engine)
    asyncio.run_coroutine_threadsafe(single.start(), loop).result(timeout=60)

    # --- the fleet: one serve process per shard, router in front -------------
    started = time.perf_counter()
    processes, shard_urls = boot_fleet(
        manifest, environment, cache_dir=str(cache_dir)
    )
    router = FleetRouter.open(fleet_dir, shard_urls)
    asyncio.run_coroutine_threadsafe(router.start(), loop).result(timeout=60)
    boot_seconds = time.perf_counter() - started

    try:
        status, body = _get(router.url, "/healthz")
        assert status == 200, body

        # --- parity gate: byte-identical answers, errors included ------------
        sample = json.loads(engine.respond("/sample"))
        paths = _parity_paths(sample)
        mismatches = [
            path for path in paths
            if _get(router.url, path) != _get(single.url, path)
        ]
        assert not mismatches, mismatches

        # --- mixed-traffic throughput: fleet vs single server ----------------
        mixed = build_workload(sample, 16000, None, seed=3)
        _multi_client(single.url, mixed[:1024], concurrency=8)
        gc.collect()
        single_qps, _, single_errors, _ = _multi_client(
            single.url, mixed, concurrency=32
        )
        _multi_client(router.url, mixed[:1024], concurrency=8)
        gc.collect()
        fleet_qps, fleet_requests, fleet_errors, _ = _multi_client(
            router.url, mixed, concurrency=32
        )
        speedup = fleet_qps / single_qps

        # --- gates, before anything is written --------------------------------
        assert single_errors == 0 and fleet_errors == 0
        gate = _fleet_gate()
        if gate is not None:
            assert speedup >= gate, (single_qps, fleet_qps, gate)
    finally:
        asyncio.run_coroutine_threadsafe(router.stop(), loop).result(
            timeout=60
        )
        asyncio.run_coroutine_threadsafe(single.stop(), loop).result(
            timeout=60
        )
        loop.call_soon_threadsafe(loop.stop)
        shutdown_fleet(processes)
        engine.close()

    shard_certs = [info.n_certificates for info in manifest.shard_infos]
    lines = [
        f"corpus: {n_certs} certificates, {n_rows} observations; "
        f"split into {SHARDS} shards in {split_seconds:.2f}s "
        f"({'/'.join(str(n) for n in shard_certs)} certs), "
        f"fleet boot {boot_seconds:.2f}s",
        "",
        f"{'measurement':<34} {'value':>12}",
        f"{'parity paths checked':<34} {len(paths):>12}",
        f"{'mixed qps, single server':<34} {single_qps:>12,.0f}",
        f"{'mixed qps, {}-shard fleet'.format(SHARDS):<34} "
        f"{fleet_qps:>12,.0f}",
        "",
        f"gates: parity 0 mismatches, fleet >= "
        + (f"{gate:.2f}x" if gate is not None else "(ungated)")
        + f" on {os.cpu_count()} core(s) (measured {speedup:.2f}x) — "
        "all passed",
    ]
    record_result("\n".join(lines), name="perf_fleet")
    _update_bench_json(results_dir, {
        "fleet": {
            "shards": SHARDS,
            "certificates": n_certs,
            "observations": n_rows,
            "shard_certificates": shard_certs,
            "split_seconds": round(split_seconds, 3),
            "boot_seconds": round(boot_seconds, 3),
            "parity": {
                "paths": len(paths),
                "mismatches": 0,
            },
            "throughput": {
                "concurrency": 32,
                "clients": CLIENTS,
                "requests": fleet_requests,
                "single_qps": round(single_qps, 1),
                "fleet_qps": round(fleet_qps, 1),
                "speedup": round(speedup, 2),
                "gate": round(gate, 2) if gate is not None else None,
                "cores": os.cpu_count(),
            },
        },
    })
