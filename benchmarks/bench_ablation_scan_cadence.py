"""Ablation — how scan cadence shapes the measured results.

The paper is careful to call its lifetimes "a lower bound ... due to the
periodic nature of our scan data" (§5.1, footnote 8).  This ablation
quantifies that: the same world scanned at full, half, and quarter
cadence yields different single-scan fractions and linked fractions —
the *population* did not change, only the sampling did.
"""

import pytest

from repro.datasets.synthetic import generate
from repro.internet.population import WorldConfig
from repro.stats.tables import format_pct, render_table
from repro.study import Study


@pytest.fixture(scope="module")
def cadence_studies():
    studies = {}
    for stride in (2, 4, 8):
        config = WorldConfig(
            seed=99, n_devices=350, n_websites=120,
            n_generic_access=30, n_enterprise=8, n_hosting=6,
            unused_roots=0,
        )
        studies[stride] = Study.from_synthetic(generate(config, scan_stride=stride))
    return studies


def test_ablation_scan_cadence(benchmark, cadence_studies, record_result):
    def measure():
        rows = {}
        for stride, study in cadence_studies.items():
            from repro.core.analysis.longevity import lifetimes

            life = lifetimes(study.dataset, study.invalid)
            pipeline = study.pipeline()
            rows[stride] = (
                len(study.dataset.scans),
                len(study.invalid),
                life.single_scan_fraction,
                float(life.cdf.median),
                pipeline.linked_fraction,
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = [
        [f"1/{stride}", scans, invalid, format_pct(single),
         f"{median:.0f}d", format_pct(linked)]
        for stride, (scans, invalid, single, median, linked) in sorted(rows.items())
    ]
    lines = [
        "Ablation — scan cadence (same world, different sampling)",
        render_table(
            ["cadence", "scans", "invalid certs", "single-scan",
             "median lifetime", "linked"],
            table,
        ),
        "",
        "The measured 'ephemerality' is partly an artifact of sampling:",
        "sparser scanning sees fewer certificates, each in fewer scans —",
        "the paper's footnote-8 lower-bound caveat, quantified.",
    ]
    record_result("\n".join(lines), "ablation_scan_cadence")

    # Sparser cadence observes fewer distinct certificates...
    counts = [rows[stride][1] for stride in (2, 4, 8)]
    assert counts[0] > counts[1] > counts[2]
    # ...and sampling at least influences the ephemerality statistics
    # (strictly monotone behaviour is not guaranteed — fewer scans also
    # mean fewer chances to re-observe a certificate).
    singles = [rows[stride][2] for stride in (2, 4, 8)]
    assert max(singles) - min(singles) > 0.02
