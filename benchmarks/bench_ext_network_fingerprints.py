"""Extension — the paper's §6.3 future work, implemented.

The paper wanted to link on network-connection features (initial TCP
window size) alongside certificate features, but its corpora contained
only certificates.  Our scanner can collect handshake traits, so this
bench runs certificate-only linking and fingerprint-augmented linking side
by side and scores both against simulator ground truth.

Also reproduces footnote 10: Lancom's shared-key fleet negotiates no
forward-secure ciphers, so its historic traffic hinges on one extractable
private key.
"""

from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.core.netlink import (
    link_on_feature_with_fingerprint,
    pfs_support,
    stack_fingerprints,
)
from repro.stats.tables import format_count, format_pct, render_table

from _truth import device_index, pairwise_precision


def test_ext_fingerprint_augmented_linking(
    benchmark, handshake_synthetic, handshake_study, record_result
):
    dataset = handshake_study.dataset
    fingerprints = list(handshake_study.unique_invalid)
    truth = device_index(dataset)
    index = stack_fingerprints(dataset, fingerprints)

    def run_both():
        rows = {}
        for feature in (Feature.NOT_BEFORE, Feature.NOT_AFTER,
                        Feature.COMMON_NAME, Feature.PUBLIC_KEY):
            plain = link_on_feature(dataset, fingerprints, feature)
            augmented = link_on_feature_with_fingerprint(
                dataset, fingerprints, feature, fingerprint_index=index
            )
            rows[feature] = (plain, augmented)
        return rows

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table_rows = []
    precisions = {}
    for feature, (plain, augmented) in results.items():
        plain_precision = pairwise_precision(plain.groups, truth)
        augmented_precision = pairwise_precision(augmented.groups, truth)
        precisions[feature] = (plain_precision, augmented_precision)
        table_rows.append(
            [
                feature.value,
                format_count(plain.total_linked), format_pct(plain_precision),
                format_count(augmented.total_linked),
                format_pct(augmented_precision),
            ]
        )
    lines = [
        "Extension — linking with network fingerprints (§6.3 future work)",
        render_table(
            ["feature", "cert-only linked", "pair precision",
             "with fingerprint", "pair precision"],
            table_rows,
        ),
        "",
        "Stack fingerprints split cross-vendor coincidence groups — dead-RTC",
        "devices of different vendors share Not Before 2000-01-01 00:00:00,",
        "and only the transport fingerprint tells them apart.  Intra-vendor",
        "coincidences remain, as Greenwald & Thomas predicted (fingerprints",
        "identify the family, not the individual device).",
    ]
    record_result("\n".join(lines), "ext_network_fingerprints")

    # Fingerprints must never hurt precision...
    for feature, (plain_precision, augmented_precision) in precisions.items():
        assert augmented_precision >= plain_precision - 1e-9, feature
    # ...the cross-vendor dead-RTC coincidence class must exist...
    rtc_stamped = [
        fp for fp in fingerprints
        if dataset.certificate(fp).not_before_stamp == (0, 0)
    ]
    rtc_stacks = {index[fp] for fp in rtc_stamped} - {None}
    assert len(rtc_stamped) >= 2 and len(rtc_stacks) >= 2, (
        "dead-RTC devices of at least two firmware families expected"
    )
    # ...and by construction no augmented group may mix firmware families.
    for feature, (_, augmented) in (
        (f, (None, results[f][1])) for f in results
    ):
        for group in augmented.groups:
            stacks = {index.get(fp) for fp in group.fingerprints}
            assert len(stacks) == 1, (feature, group.value)


def test_ext_pfs_posture(benchmark, handshake_study, record_result):
    dataset = handshake_study.dataset

    invalid_report, valid_report = benchmark.pedantic(
        lambda: (
            pfs_support(dataset, handshake_study.invalid),
            pfs_support(dataset, handshake_study.valid),
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Extension — forward-secrecy posture (§5.2 footnote 10)",
        render_table(
            ["population", "with handshake", "PFS share",
             "shared key AND no PFS"],
            [
                ["invalid", format_count(invalid_report.n_with_handshake),
                 format_pct(invalid_report.pfs_fraction),
                 format_count(invalid_report.shared_key_without_pfs)],
                ["valid", format_count(valid_report.n_with_handshake),
                 format_pct(valid_report.pfs_fraction),
                 format_count(valid_report.shared_key_without_pfs)],
            ],
        ),
        "",
        "The Lancom double jeopardy: certificates that share a private key",
        "*and* never negotiate PFS — one extracted key decrypts the fleet's",
        "historic traffic.",
    ]
    record_result("\n".join(lines), "ext_pfs_posture")

    # Valid (mainstream) stacks negotiate PFS; embedded stacks mostly not.
    assert valid_report.pfs_fraction > 0.9
    assert invalid_report.pfs_fraction < valid_report.pfs_fraction
    # The footnote-10 population exists.
    assert invalid_report.shared_key_without_pfs > 0
