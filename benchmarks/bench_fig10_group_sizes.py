"""Figure 10 + §6.4.3/§6.4.4 — the iterative pipeline and its groups.

Paper: 27.4M certificates (39.4 % of invalid) link into 2.98M groups;
62 % of groups have more than two certificates, with the tail reaching
413; after linking, the single-scan unit share drops 61 % → 50.7 % and
mean lifetime rises 95.4 → 132.3 days.
"""

from repro.core.features import Feature
from repro.stats.tables import format_count, format_pct, render_table


def test_fig10_group_sizes(benchmark, paper_study, record_result):
    pipeline = benchmark.pedantic(paper_study.pipeline, rounds=1, iterations=1)

    cdf = pipeline.group_size_cdf()
    lines = [
        "Figure 10 — linked-group sizes (final §6.4.3 pipeline)",
        f"paper: 27.4M certs (39.4%) in 2.98M groups; tail to 413 certs",
        f"ours : {format_count(pipeline.linked_certificates)} certs "
        f"({format_pct(pipeline.linked_fraction)}) in "
        f"{format_count(len(pipeline.groups))} groups; tail to {cdf.max:.0f}",
        f"field order: {', '.join(f.value for f in pipeline.field_order)}",
        f"excluded fields: {', '.join(f.value for f in pipeline.excluded) or '(none)'}",
        "",
        "group-size CDF:",
    ]
    for size in (2, 3, 5, 10, 20, 50, 100, 200):
        lines.append(f"  <= {size:>3d}: {format_pct(cdf.at(size))}")
    lines.append("")
    lines.append("per-field group counts and mean sizes:")
    rows = []
    for feature in Feature:
        groups = pipeline.groups_of(feature)
        if not groups:
            continue
        mean_size = sum(len(g) for g in groups) / len(groups)
        rows.append([feature.value, len(groups), f"{mean_size:.2f}"])
    lines.append(render_table(["field", "groups", "mean size"], rows))
    record_result("\n".join(lines), "fig10_group_sizes")

    # Shape assertions.
    assert 0.2 < pipeline.linked_fraction < 0.8
    assert cdf.min == 2
    assert cdf.max > 20                       # a long tail exists
    pk_groups = pipeline.groups_of(Feature.PUBLIC_KEY)
    assert pk_groups, "public key must contribute groups"
    assert max(map(len, pk_groups)) >= 10    # the PK long tail
    # §6.4.3's closing observation: SAN groups average larger than Common
    # Name groups (5.10 vs 2.60 in the paper).
    san_groups = pipeline.groups_of(Feature.SAN_LIST)
    cn_groups = pipeline.groups_of(Feature.COMMON_NAME)
    if san_groups and cn_groups:
        san_mean = sum(map(len, san_groups)) / len(san_groups)
        cn_mean = sum(map(len, cn_groups)) / len(cn_groups)
        assert san_mean > cn_mean


def test_fig10_lifetime_improvement(benchmark, paper_study, record_result):
    improvement = benchmark.pedantic(
        paper_study.lifetime_improvement, rounds=1, iterations=1
    )

    rows = [
        ["single-scan share before", "61%",
         format_pct(improvement.single_scan_fraction_before)],
        ["single-scan share after", "50.7%",
         format_pct(improvement.single_scan_fraction_after)],
        ["mean lifetime before", "95.4d", f"{improvement.mean_lifetime_before:.1f}d"],
        ["mean lifetime after", "132.3d", f"{improvement.mean_lifetime_after:.1f}d"],
    ]
    lines = ["§6.4.4 — population statistics before vs after linking",
             render_table(["statistic", "paper", "ours"], rows)]
    record_result("\n".join(lines), "fig10_lifetime_improvement")

    assert (
        improvement.single_scan_fraction_after
        < improvement.single_scan_fraction_before
    )
    assert improvement.mean_lifetime_after > improvement.mean_lifetime_before
