"""Ablation — the §6.4.3 field ordering.

The paper links fields in decreasing AS-level-consistency order, removing
linked certificates after each field.  This compares that policy against
a reversed order and against the excluded low-consistency fields, scoring
each with ground-truth group purity.
"""

from repro.core.pipeline import iterative_link
from repro.stats.tables import format_pct, render_table

from _truth import device_index, group_purity


def test_ablation_field_order(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)
    truth = device_index(dataset)
    as_of = paper_study.as_of
    evaluations = paper_study.feature_evaluations()

    default = paper_study.pipeline()
    reversed_order = tuple(reversed(default.field_order))
    #: What happens if the paper had kept the fields it excluded?
    with_excluded = tuple(default.field_order) + tuple(default.excluded)

    def run_variants():
        return {
            "reversed": iterative_link(
                dataset, fingerprints, as_of, field_order=reversed_order
            ),
            "with-excluded-fields": iterative_link(
                dataset, fingerprints, as_of, field_order=with_excluded
            ),
        }

    variants = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    variants["consistency-ordered (paper)"] = default

    rows = []
    purities = {}
    for name, result in variants.items():
        purities[name] = group_purity(result.groups, truth)
        rows.append(
            [
                name,
                result.linked_certificates,
                len(result.groups),
                format_pct(purities[name], 2),
            ]
        )
    lines = [
        "Ablation — pipeline field order",
        render_table(["variant", "linked certs", "groups", "group purity"], rows),
        "",
        f"paper order: {', '.join(f.value for f in default.field_order)}",
        f"excluded:    {', '.join(f.value for f in default.excluded) or '(none)'}",
    ]
    record_result("\n".join(lines), "ablation_field_order")

    # Adding the excluded (low-consistency) fields links more certificates.
    assert (
        variants["with-excluded-fields"].linked_certificates
        > default.linked_certificates
    )
    # Every variant stays pure in the simulator — notably, IN+SN (which the
    # paper's proxy rejects) links PlayBooks *correctly*; its low AS-level
    # consistency reflects genuinely mobile devices, not bad links.  The
    # consistency proxy is conservative, exactly as §8 argues.
    for name, purity in purities.items():
        assert purity > 0.9, name
