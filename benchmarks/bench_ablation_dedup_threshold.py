"""Ablation — the §6.2 two-address uniqueness threshold.

The paper declares a certificate device-unique only if seen at ≤2
addresses in every scan.  This sweep shows why two is the right number:
threshold 1 throws away genuine mid-scan movers; thresholds ≥3 admit
firmware-shared certificates that pollute linking.
"""

from repro.core.dedup import classify_unique_certificates
from repro.stats.tables import format_pct, render_table

from _truth import device_index


def test_ablation_dedup_threshold(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    invalid = list(paper_study.invalid)
    truth = device_index(dataset)

    def sweep():
        return {
            threshold: classify_unique_certificates(dataset, invalid, threshold)
            for threshold in (1, 2, 3, 4)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    quality = {}
    for threshold, result in results.items():
        # Ground truth: a certificate is genuinely unique iff one device
        # ever served it.
        truly_shared_kept = sum(
            1 for fp in result.unique if len(truth.get(fp, ())) > 1
        )
        truly_unique_dropped = sum(
            1 for fp in result.non_unique if len(truth.get(fp, ())) <= 1
        )
        quality[threshold] = (truly_shared_kept, truly_unique_dropped)
        rows.append(
            [
                threshold,
                format_pct(result.excluded_fraction, 2),
                truly_shared_kept,
                truly_unique_dropped,
            ]
        )
    lines = [
        "Ablation — dedup threshold (paper uses 2)",
        render_table(
            ["threshold", "excluded", "shared certs kept (bad)",
             "unique certs dropped (bad)"],
            rows,
        ),
    ]
    record_result("\n".join(lines), "ablation_dedup_threshold")

    # Loosening the threshold admits monotonically more shared certificates
    # (a shared certificate that never shows 3+ addresses in one scan —
    # e.g. a firmware-baked cert whose siblings are rarely online together —
    # is an inherent false negative at any threshold)...
    assert quality[2][0] <= quality[3][0] <= quality[4][0]
    assert quality[4][0] > quality[2][0]
    # ...while threshold 1 needlessly discards far more genuine uniques.
    assert quality[1][1] > 10 * max(1, quality[2][1])
    # The paper's threshold keeps the total damage (both error kinds) low.
    assert quality[2][0] + quality[2][1] <= quality[1][0] + quality[1][1]
    assert quality[2][0] + quality[2][1] <= quality[4][0] + quality[4][1]
