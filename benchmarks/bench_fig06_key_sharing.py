"""Figure 6 + §5.2 — public-key sharing, valid vs invalid.

Paper: 47 % of invalid certificates share their key with another
certificate; one Lancom key covers 6.5 % of all invalid certificates;
the invalid coverage curve sits far above the valid one.
"""

from repro.core.analysis.keys import key_sharing
from repro.stats.tables import format_pct, render_table


def test_fig06_key_sharing(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    invalid, valid = benchmark.pedantic(
        lambda: (
            key_sharing(dataset, paper_study.invalid),
            key_sharing(dataset, paper_study.valid),
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        ["invalid sharing a key", ">47%", format_pct(invalid.shared_fraction)],
        ["top invalid key share", "6.5%", format_pct(invalid.top_key_fraction)],
        ["invalid keys / certs", "", f"{invalid.n_keys:,} / {invalid.n_certificates:,}"],
        ["valid keys / certs", "", f"{valid.n_keys:,} / {valid.n_certificates:,}"],
    ]
    lines = [
        "Figure 6 — key sharing",
        render_table(["statistic", "paper", "ours"], rows),
        "",
        "coverage (fraction of keys → fraction of certificates):",
    ]
    for key_fraction in (0.01, 0.05, 0.1, 0.25, 0.5, 1.0):
        lines.append(
            f"  {key_fraction:5.2f}  "
            f"valid {valid.certificates_covered_by(key_fraction):.3f}  "
            f"invalid {invalid.certificates_covered_by(key_fraction):.3f}"
        )
    record_result("\n".join(lines), "fig06_key_sharing")

    # Shape: invalid certificates share keys far more than valid ones.
    assert invalid.shared_fraction > valid.shared_fraction
    assert 0.02 < invalid.top_key_fraction < 0.25     # the Lancom key
    # Both curves sit above the diagonal; invalid dominates valid early on.
    assert invalid.certificates_covered_by(0.05) > valid.certificates_covered_by(0.05)
