"""Figure 7 — average addresses advertising each certificate per scan.

Paper: both populations are overwhelmingly single-host (the y-axis starts
at 0.75), but the invalid p99 is 2.0 hosts vs 11.3 for valid, and valid
CA certificates reach millions of addresses.
"""

from repro.core.analysis.hosts import ip_diversity
from repro.stats.tables import render_table


def test_fig07_ip_diversity(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    invalid, valid = benchmark.pedantic(
        lambda: (
            ip_diversity(dataset, paper_study.invalid),
            ip_diversity(dataset, paper_study.valid),
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        ["invalid p99 (hosts)", "2.0", f"{invalid.p99:.1f}"],
        ["valid p99 (hosts)", "11.3", f"{valid.p99:.1f}"],
        ["invalid max mean hosts", "", f"{invalid.max_mean_ips:.1f}"],
        ["valid max mean hosts", ">3.6M (CA certs)", f"{valid.max_mean_ips:.1f}"],
    ]
    lines = [
        "Figure 7 — addresses per certificate per scan",
        render_table(["statistic", "paper", "ours"], rows),
        "",
        "CDF series (mean hosts → fraction):",
    ]
    for hosts in (1, 2, 3, 5, 10, 20, 50):
        lines.append(
            f"  {hosts:>3d}  valid {valid.cdf.at(hosts):.3f}  "
            f"invalid {invalid.cdf.at(hosts):.3f}"
        )
    record_result("\n".join(lines), "fig07_ip_diversity")

    # Shape: both mostly single-host; valid replicates much further.
    assert invalid.cdf.at(1) > 0.75
    assert valid.p99 > invalid.p99
    assert valid.max_mean_ips > 3 * invalid.max_mean_ips
