"""§7.2–§7.3 — trackable devices and their movement.

Paper: 5.59M devices trackable via one long-lived certificate; linking
raises it to 6.75M (+17.2 %).  Of those, 718K change AS at least once
(69.7 % exactly once, some >100 times); 1,159 bulk transfers of ≥50
devices (Verizon→MCI style); 45,450 devices move across countries.
"""

from repro.stats.tables import format_count, format_pct, render_table


def test_sec72_trackable_devices(benchmark, paper_study, record_result):
    report = benchmark.pedantic(paper_study.trackable, rounds=1, iterations=1)

    rows = [
        ["trackable without linking", "5,585,965",
         format_count(report.trackable_without_linking)],
        ["trackable with linking", "6,750,744",
         format_count(report.trackable_with_linking)],
        ["improvement", "+17.2%", f"+{format_pct(report.improvement_fraction)}"],
    ]
    lines = ["§7.2 — trackable devices (observed > 1 year)",
             render_table(["statistic", "paper", "ours"], rows)]
    record_result("\n".join(lines), "sec72_trackable")

    assert report.trackable_with_linking > report.trackable_without_linking
    assert report.improvement_fraction > 0.05


def test_sec73_device_movement(benchmark, paper_synthetic, paper_study, record_result):
    registry = paper_synthetic.world.registry

    movement = benchmark.pedantic(
        lambda: paper_study.movement(bulk_threshold=10), rounds=1, iterations=1
    )

    rows = [
        ["tracked devices", "6,750,744", format_count(movement.tracked_devices)],
        ["devices changing AS", "718,495", format_count(movement.devices_changing_as)],
        ["total AS transitions", "1,328,223", format_count(movement.total_transitions)],
        ["changed exactly once", "69.7%", format_pct(movement.single_change_fraction)],
        ["max changes (mobile)", ">100", movement.max_changes],
        ["bulk transfers (scaled ≥10)", "1,159 (≥50)", len(movement.bulk_transfers)],
        ["cross-country moves", "45,450", format_count(movement.country_moves)],
    ]
    lines = ["§7.3 — device movement",
             render_table(["statistic", "paper", "ours"], rows)]
    if movement.bulk_transfers:
        lines.append("")
        lines.append("largest bulk transfers:")
        for transfer in movement.bulk_transfers[:3]:
            src = registry.get(transfer.from_asn)
            dst = registry.get(transfer.to_asn)
            lines.append(
                f"  AS{transfer.from_asn} ({src.name if src else '?'}) -> "
                f"AS{transfer.to_asn} ({dst.name if dst else '?'}): "
                f"{transfer.device_count} devices"
            )
    record_result("\n".join(lines), "sec73_movement")

    # Shape: movement exists, mostly single moves, plus the engineered
    # Verizon→MCI prefix transfer and some cross-country moves.
    assert movement.devices_changing_as > 0
    assert movement.single_change_fraction > 0.5
    assert movement.country_moves > 0
    transfers = {(t.from_asn, t.to_asn) for t in movement.bulk_transfers}
    assert (19262, 701) in transfers, "the Verizon->MCI transfer must surface"


def test_sec71_fleet_dynamics(benchmark, paper_study, record_result):
    """§7.1's motivation: the tracked population is itself a time series."""
    from repro.core.analysis.fleet import population_series, turnover

    dataset = paper_study.dataset
    devices = paper_study.tracked_devices()

    def run():
        series = population_series(devices, dataset.scan_days())
        churn = turnover(devices, dataset.scans[0].day, dataset.scans[-1].day)
        return series, churn

    series, churn = benchmark.pedantic(run, rounds=1, iterations=1)

    sampled = series[:: max(1, len(series) // 10)]
    lines = [
        "§7.1 — tracked-device population over time",
        render_table(
            ["statistic", "value"],
            [
                ["tracked devices", format_count(churn.n_devices)],
                ["arrivals / month", f"{churn.arrivals_per_month:.1f}"],
                ["departures / month", f"{churn.departures_per_month:.1f}"],
                ["median observed lifespan", f"{churn.lifespan_cdf.median:.0f}d"],
                ["persistent across dataset", format_pct(churn.persistent_fraction)],
            ],
        ),
        "",
        "population per scan (sampled):",
    ] + [f"  day {day}: {count}" for day, count in sampled]
    record_result("\n".join(lines), "sec71_fleet_dynamics")

    # The IoT growth trend: the device population rises over the dataset.
    early = sum(count for _, count in series[:5]) / 5
    late = sum(count for _, count in series[-5:]) / 5
    assert late > early
    assert churn.arrivals_per_month > churn.departures_per_month
