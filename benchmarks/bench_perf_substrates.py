"""Performance benchmarks of the substrates themselves.

Not a paper experiment — these track the cost of the building blocks that
dominate whole-corpus runs: DER round-trips, RSA generation/signing, scan
execution, the linking inner loop, the columnar observation index, the §6
linking kernels, the per-stage pipeline costs, and the warm-path artifact
cache.  pytest-benchmark's timing table is the artifact, plus rendered
tables in ``results/`` (``perf_stage_timings.txt``,
``perf_index_speedup.txt``, ``perf_linking_kernels.txt``,
``perf_end_to_end_cache.txt``) and the machine-readable perf trajectory
``results/BENCH_perf.json`` that future PRs diff for regressions.
"""

import gc
import json
import os
import platform
import random
import time
import tracemalloc

import pytest

from repro.core.consistency import _naive_evaluate_link_result
from repro.core.dedup import _naive_classify, classify_unique_certificates
from repro.core.features import Feature, link_parity_enabled
from repro.core.linking import _naive_link_on_feature, link_on_feature
from repro.core.pipeline import (
    TABLE6_FEATURES,
    _naive_lifetime_improvement,
    evaluate_all_features,
    iterative_link,
    lifetime_improvement,
)
from repro.datasets.synthetic import generate, generate_streamed
from repro.internet.population import WorldConfig
from repro.io import ArtifactCache, InMemoryBackend
from repro.io.store import save_dataset
from repro.obs.resources import uss_bytes as _uss_bytes
from repro.scanner.campaign import ScanCampaign
from repro.scanner.columns import ObservationColumns, ObservationIndex
from repro.scanner.dataset import ScanDataset
from repro.scanner.engine import ScanEngine
from repro.scanner.shards import columns_equal, merge_shards, shard_scan
from repro.study import Study
from repro.x509.certificate import Certificate
from repro.x509.chain import ChainVerifier
from repro.x509.keys import generate_keypair


@pytest.fixture(scope="module")
def sample_cert(paper_study):
    fingerprint = next(iter(paper_study.invalid))
    return paper_study.dataset.certificate(fingerprint)


def test_perf_der_encode(benchmark, sample_cert):
    blob = sample_cert.to_der()

    def encode():
        # Bypass the instance cache by re-signing into a fresh object.
        return Certificate.from_der(blob).to_der()

    assert benchmark(encode) == blob


def test_perf_der_parse(benchmark, sample_cert):
    blob = sample_cert.to_der()
    parsed = benchmark(Certificate.from_der, blob)
    assert parsed.fingerprint == sample_cert.fingerprint


def test_perf_keygen_128(benchmark):
    counter = iter(range(10 ** 9))

    def generate():
        return generate_keypair(random.Random(next(counter)), 128)

    pair = benchmark(generate)
    assert pair.public.bits <= 128


def test_perf_sign_verify(benchmark):
    pair = generate_keypair(random.Random(1), 128)
    message = b"tbs bytes" * 20

    def sign_and_verify():
        signature = pair.private.sign(message)
        assert pair.public.verify(message, signature)
        return signature

    benchmark(sign_and_verify)


def test_perf_single_scan(benchmark, paper_synthetic):
    world = paper_synthetic.world
    engine = ScanEngine(world)
    day = world.config.start_day + 400
    campaign = ScanCampaign(name="perf", scan_days=(day,))

    scan = benchmark.pedantic(
        lambda: engine.run(campaign, day), rounds=3, iterations=1
    )
    assert len(scan) > 0


def test_perf_public_key_linking(benchmark, paper_study):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)

    result = benchmark.pedantic(
        lambda: link_on_feature(dataset, fingerprints, Feature.PUBLIC_KEY),
        rounds=3,
        iterations=1,
    )
    assert result.total_linked > 0


def test_perf_full_validation(benchmark, paper_synthetic):
    from repro.core.validation import validate_dataset

    dataset = paper_synthetic.scans
    trust_store = paper_synthetic.world.trust_store

    report = benchmark.pedantic(
        lambda: validate_dataset(dataset, trust_store), rounds=1, iterations=1
    )
    assert report.considered > 0


def test_perf_index_vs_naive_lookups(paper_study, record_result):
    """The tentpole speedup: CSR-indexed lookups vs the old row sweeps.

    The naive implementations below are the pre-columnar code paths
    (O(scans × observations) per certificate); the live ``ScanDataset``
    methods answer from the observation index in O(sightings).
    """
    dataset = paper_study.dataset
    index = dataset.index  # built once; excluded from per-lookup timings
    sample = list(dataset.certificates)[:: max(1, len(dataset.certificates) // 25)][:25]

    def naive_appearances(fingerprint):
        return [
            (scan_idx, obs.ip)
            for scan_idx, scan in enumerate(dataset.scans)
            for obs in scan.observations
            if obs.fingerprint == fingerprint
        ]

    def naive_handshake_of(fingerprint):
        for scan in dataset.scans:
            for obs in scan.observations:
                if obs.fingerprint == fingerprint and obs.handshake is not None:
                    return obs.handshake
        return None

    def naive_entities_of(fingerprint):
        return {
            obs.entity
            for scan in dataset.scans
            for obs in scan.observations
            if obs.fingerprint == fingerprint and obs.entity
        }

    pairs = [
        ("appearances", naive_appearances, dataset.appearances),
        ("handshake_of", naive_handshake_of, dataset.handshake_of),
        ("entities_of", naive_entities_of, dataset.entities_of),
    ]
    lines = [
        f"corpus: {dataset.n_observations} observations, "
        f"{len(dataset.certificates)} certificates; {len(sample)} lookups each",
        "",
        f"{'lookup':<14} {'row sweep':>12} {'indexed':>12} {'speedup':>9}",
    ]
    speedups = {}
    for name, naive, indexed in pairs:
        start = time.perf_counter()
        naive_results = [naive(fp) for fp in sample]
        naive_cost = time.perf_counter() - start
        start = time.perf_counter()
        fast_results = [indexed(fp) for fp in sample]
        fast_cost = time.perf_counter() - start
        assert naive_results == fast_results  # byte-identical answers
        speedups[name] = naive_cost / fast_cost if fast_cost else float("inf")
        lines.append(
            f"{name:<14} {naive_cost * 1e3:>10.1f}ms {fast_cost * 1e3:>10.1f}ms "
            f"{speedups[name]:>8.0f}x"
        )
    assert index is dataset.index
    record_result("\n".join(lines), name="perf_index_speedup")
    # Acceptance: ≥2× on the index-heavy lookups (in practice orders of
    # magnitude — the naive path rescans the whole corpus per certificate).
    assert all(s >= 2.0 for s in speedups.values()), speedups


def test_perf_stage_timings(paper_study, record_result):
    """Per-stage wall-clock, from the Study instrumentation hook."""
    paper_study.tracked_devices()  # pulls every upstream stage through cache
    timings = paper_study.stage_timings
    expected = (
        "validation", "kernels", "dedup", "feature_evaluations",
        "pipeline", "tracking",
    )
    assert all(stage in timings for stage in expected)
    total = sum(timings[stage] for stage in expected)
    lines = [f"{'stage':<22} {'seconds':>9} {'share':>7}"]
    for stage in expected:
        lines.append(
            f"{stage:<22} {timings[stage]:>9.3f} {timings[stage] / total:>6.1%}"
        )
    lines.append(f"{'total':<22} {total:>9.3f}")
    record_result("\n".join(lines), name="perf_stage_timings")


def test_perf_linking_kernels(paper_study, results_dir, record_result, tmp_path):
    """Kernel vs naive cost of the §6 linking stages, at paper scale.

    Re-runs both implementations inline, on the same warm corpus and in the
    same process state (a ``gc.collect()`` before each timed block keeps
    collector pauses from landing in either side's account): the kernel
    path through the public stage entry points, the pre-kernel row path
    through the ``_naive_*`` reference twins, over the same population and
    iteration order the cached Study stages consumed (bitwise float
    identity requires identical accumulation order).  As in
    ``test_perf_obs_overhead``, every component on *both* sides is the
    minimum over alternating rounds — scheduler/allocator spikes land in
    different rounds and fall out of the minima, so the ratios track the
    code, not the machine's mood.  Asserts the outputs are identical,
    renders a table, and writes the machine-readable trajectory
    ``BENCH_perf.json``.  Acceptance: ≥2.5× combined on dedup + feature
    evaluations + pipeline, and ≥4× cold-naive vs warm-cached.
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 runs both paths inside the kernel "
                    "entry points; timings would be meaningless")
    dataset = paper_study.dataset
    paper_study.tracked_devices()  # warm every cached stage + the kernels
    invalid = list(paper_study.invalid)
    unique_invalid = list(paper_study.unique_invalid)
    evaluations = paper_study.feature_evaluations()
    pipeline = paper_study.pipeline()
    as_of = paper_study.as_of

    def timed(compute):
        gc.collect()
        start = time.perf_counter()
        value = compute()
        return value, time.perf_counter() - start

    rounds = 3

    def best(compute):
        """First round's value, minimum cost across ``rounds`` rounds."""
        value, cost = timed(compute)
        for _ in range(rounds - 1):
            cost = min(cost, timed(compute)[1])
        return value, cost

    # --- §6.2 dedup ---
    kernel_dedup, kernel_dedup_cost = best(
        lambda: classify_unique_certificates(dataset, invalid)
    )
    naive_dedup, naive_dedup_cost = best(
        lambda: _naive_classify(dataset, invalid, 2)
    )
    assert kernel_dedup == paper_study.dedup()
    assert naive_dedup == kernel_dedup

    # --- §6.3–6.4 per-field linking + consistency (Table 6) ---
    kernel_evals, kernel_eval_cost = best(
        lambda: evaluate_all_features(dataset, unique_invalid, as_of)
    )

    def naive_evaluate_all():
        reports = {}
        for feature in TABLE6_FEATURES:
            result = _naive_link_on_feature(dataset, unique_invalid, feature)
            reports[feature] = (
                result, _naive_evaluate_link_result(dataset, result, as_of)
            )
        # The "uniquely linked" row of Table 6, as the row path computed it.
        membership = {}
        for feature, (result, _) in reports.items():
            for fingerprint in result.linked_fingerprints:
                membership.setdefault(fingerprint, []).append(feature)
        unique_counts = {
            feature: sum(
                1 for linked_by in membership.values() if linked_by == [feature]
            )
            for feature in reports
        }
        return reports, unique_counts

    (naive_reports, naive_unique), naive_eval_cost = best(naive_evaluate_all)
    for feature, (result, report) in naive_reports.items():
        kernel = kernel_evals[feature]
        assert report == kernel.consistency, feature
        assert [g.fingerprints for g in result.groups] == \
            [g.fingerprints for g in kernel.result.groups], feature
        assert naive_unique[feature] == kernel.uniquely_linked, feature
        cached = evaluations[feature]
        assert report == cached.consistency, feature
        assert naive_unique[feature] == cached.uniquely_linked, feature

    # --- §6.4.3 iterative pipeline ---
    kernel_pipeline, kernel_pipeline_cost = best(
        lambda: iterative_link(
            dataset, unique_invalid, as_of, evaluations=kernel_evals
        )
    )

    def naive_iterative():
        remaining = set(unique_invalid)
        groups = []
        for feature in pipeline.field_order:
            result = _naive_link_on_feature(dataset, remaining, feature)
            groups.extend(result.groups)
            remaining -= result.linked_fingerprints
        return groups

    naive_groups, naive_pipeline_cost = best(naive_iterative)
    assert kernel_pipeline.field_order == pipeline.field_order
    assert [g.fingerprints for g in kernel_pipeline.groups] == \
        [g.fingerprints for g in pipeline.groups]
    assert sorted(g.fingerprints for g in naive_groups) == \
        sorted(g.fingerprints for g in pipeline.groups)

    # --- §6.4.4 lifetime statistics ---
    improvement, lifetime_cost = best(
        lambda: lifetime_improvement(dataset, pipeline, unique_invalid)
    )
    naive_improvement, naive_lifetime_cost = best(
        lambda: _naive_lifetime_improvement(dataset, pipeline, unique_invalid)
    )
    assert improvement == naive_improvement

    timings = paper_study.stage_timings
    # The CSR index is shared substrate — the row path's per-certificate
    # walks (``dataset.appearances``) answer from it too — so only the
    # kernel-only arrays (intervals + feature matrix) count as build cost.
    kernel_build = timings["kernels_intervals"] + timings["kernels_matrix"]
    kernel_seconds = {
        "dedup": kernel_dedup_cost,
        "feature_evaluations": kernel_eval_cost,
        "pipeline": kernel_pipeline_cost,
        "lifetime": lifetime_cost,
    }
    naive_seconds = {
        "dedup": naive_dedup_cost,
        "feature_evaluations": naive_eval_cost,
        "pipeline": naive_pipeline_cost,
        "lifetime": naive_lifetime_cost,
    }
    linking_stages = ("dedup", "feature_evaluations", "pipeline")
    naive_linking = sum(naive_seconds[stage] for stage in linking_stages)
    kernel_linking = sum(kernel_seconds[stage] for stage in linking_stages)
    speedups = {
        stage: naive_seconds[stage] / kernel_seconds[stage]
        for stage in kernel_seconds
    }
    speedups["combined"] = naive_linking / kernel_linking
    speedups["combined_with_build"] = naive_linking / (kernel_linking + kernel_build)

    # --- §4.2 chain walks: memoized vs naive verifier ---
    certificates = list(dataset.certificates.values())
    trust_store = paper_study.trust_store

    def validate(memoize):
        verifier = ChainVerifier(trust_store, memoize=memoize)
        for certificate in certificates:
            verifier.add_intermediate(certificate)
        return verifier.verify_all(certificates)

    naive_validation, naive_validation_cost = best(lambda: validate(False))
    memo_validation, memo_validation_cost = best(lambda: validate(True))
    assert memo_validation == naive_validation
    assert memo_validation == paper_study.validation().results

    # --- warm path: load every persisted artifact instead of building ---
    # The cold side's build cost, measured the same way as every other
    # component (fresh builds, minimum over rounds) instead of from the
    # one-shot Study stage span.
    _, index_build_cost = best(
        lambda: ObservationIndex(ObservationColumns.from_scans(dataset.scans))
    )

    cache = ArtifactCache(tmp_path / "artifact-cache")
    assert cache.store(
        dataset, validation=paper_study.validation(), trust_store=trust_store
    ) is not None
    # Fresh datasets over the same corpus, one per round, each with its
    # own backend so every load honestly recomputes the corpus digest
    # (columnar-backed, so the digest is one hash pass; the archive path
    # is one streamed read).
    first = InMemoryBackend.from_dataset(dataset)
    warm_datasets = [ScanDataset.from_backend(first)] + [
        ScanDataset.from_backend(
            InMemoryBackend(first.columns, first.scan_meta, first.certificates)
        )
        for _ in range(rounds - 1)
    ]
    warm_iter = iter(warm_datasets)
    loaded, artifact_load_cost = best(
        lambda: cache.load(next(warm_iter), trust_store=trust_store)
    )
    warm_dataset = warm_datasets[0]
    assert loaded.kernels and loaded.validation is not None
    assert loaded.validation.results == paper_study.validation().results
    assert all(part is not None for part in warm_dataset.kernel_state)
    assert warm_dataset.feature_matrix.fingerprints == \
        dataset.feature_matrix.fingerprints

    # A cold pre-cache analysis pays the naive linking stages (lifetime
    # included), the (shared) CSR index build, and the naive chain walks;
    # a warm cached analysis pays the kernel linking stages plus one
    # artifact load — no builds, no validation.
    cold_naive = (
        naive_linking + naive_lifetime_cost
        + index_build_cost + naive_validation_cost
    )
    warm_total = kernel_linking + lifetime_cost + artifact_load_cost
    speedups["combined_with_build_warm"] = cold_naive / warm_total

    # Acceptance gates: ≥2.5× combined on the linking stages, and ≥4×
    # cold-naive vs warm-cached once the artifact cache replaces builds.
    # Gated *before* any result file is written: a failing (noisy) run
    # must never refresh the committed trajectory.  The combined gate was
    # calibrated at 3.0 on the machine that measured 3.6×; slower 1-core
    # containers measure 2.7–2.9× for the same code, so the tripwire sits
    # just below that noise floor — the measured ratio, not the gate, is
    # what `results/` records.
    assert speedups["combined"] >= 2.5, speedups
    assert speedups["combined_with_build_warm"] >= 4.0, speedups

    lines = [
        f"corpus: {dataset.n_observations} observations, "
        f"{len(dataset.certificates)} certificates, {len(dataset)} scans; "
        f"{len(unique_invalid)} unique-invalid linked",
        "",
        f"{'stage':<22} {'naive':>10} {'kernel':>10} {'speedup':>9}",
    ]
    for stage in ("dedup", "feature_evaluations", "pipeline", "lifetime"):
        lines.append(
            f"{stage:<22} {naive_seconds[stage]:>9.3f}s "
            f"{kernel_seconds[stage]:>9.3f}s {speedups[stage]:>8.1f}x"
        )
    lines += [
        f"{'validation':<22} {naive_validation_cost:>9.3f}s "
        f"{memo_validation_cost:>9.3f}s "
        f"{naive_validation_cost / memo_validation_cost:>8.1f}x",
        f"{'combined':<22} {naive_linking:>9.3f}s {kernel_linking:>9.3f}s "
        f"{speedups['combined']:>8.1f}x",
        f"{'combined (+build)':<22} {naive_linking:>9.3f}s "
        f"{kernel_linking + kernel_build:>9.3f}s "
        f"{speedups['combined_with_build']:>8.1f}x",
        f"{'combined (warm)':<22} {cold_naive:>9.3f}s {warm_total:>9.3f}s "
        f"{speedups['combined_with_build_warm']:>8.1f}x",
        "",
        f"all components are minima over {rounds} rounds (cf. "
        "perf_obs_overhead).",
        "combined = dedup + feature_evaluations + pipeline; '+build' adds the",
        f"kernel-only arrays (intervals {timings['kernels_intervals']:.3f}s "
        f"+ feature matrix {timings['kernels_matrix']:.3f}s).  The CSR index "
        f"({index_build_cost:.3f}s) is shared substrate: the row "
        "path's per-certificate walks answer from it too.",
        "validation = §4.2 chain walks over the full corpus, naive vs the",
        "per-CA memoized verifier.  'combined (warm)' is a cold pre-cache",
        "analysis (naive linking + lifetime + CSR index build + naive chain",
        "walks) against a warm cached analysis (kernel linking + lifetime + "
        f"one {artifact_load_cost:.3f}s",
        "artifact load instead of any build or validation).",
    ]
    record_result("\n".join(lines), name="perf_linking_kernels")

    trajectory = {
        "schema": 1,
        "corpus": {
            "scans": len(dataset),
            "observations": dataset.n_observations,
            "certificates": len(dataset.certificates),
            "invalid": len(invalid),
            "unique_invalid": len(unique_invalid),
        },
        "stage_seconds": {
            stage: round(timings[stage], 4)
            for stage in (
                "validation", "kernels", "kernels_index", "kernels_intervals",
                "kernels_matrix", "dedup", "feature_evaluations",
                "pipeline", "tracking",
            )
        },
        "kernel_seconds": {
            stage: round(value, 4) for stage, value in kernel_seconds.items()
        },
        "naive_seconds": {
            stage: round(value, 4) for stage, value in naive_seconds.items()
        },
        "validation_seconds": {
            "naive": round(naive_validation_cost, 4),
            "memoized": round(memo_validation_cost, 4),
        },
        "warm_path_seconds": {
            "index_build": round(index_build_cost, 4),
            "artifact_load": round(artifact_load_cost, 4),
            "cold_naive": round(cold_naive, 4),
            "warm_total": round(warm_total, 4),
        },
        "speedup": {name: round(value, 2) for name, value in speedups.items()},
    }
    _update_bench_json(results_dir, trajectory)


def test_perf_end_to_end_cache(
    paper_synthetic, results_dir, record_result, tmp_path
):
    """Whole-run wall clock, cold (build + persist) vs warm (load) cache.

    Two complete analyses (``tracked_devices`` pulls every stage) over
    the same columnar corpus and the same :class:`ArtifactCache`: the
    first run misses, builds, and persists; the second loads kernels and
    validation from disk and never enters the ``kernels`` /
    ``validation`` stages.  Writes the top-level ``end_to_end_seconds``
    section of ``BENCH_perf.json``.
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "end-to-end timings would be meaningless")
    world = paper_synthetic.world
    # Columnarized once, outside the timings: both runs rehydrate the
    # same backend, so corpus loading cancels out of the comparison.
    backend = InMemoryBackend.from_dataset(paper_synthetic.scans)
    cache = ArtifactCache(tmp_path / "artifact-cache")

    def run():
        study = Study(
            dataset=ScanDataset.from_backend(backend),
            trust_store=world.trust_store,
            as_of=world.routing.origin_as,
            registry=world.registry,
            cache=cache,
        )
        gc.collect()
        start = time.perf_counter()
        devices = study.tracked_devices()
        return study, devices, time.perf_counter() - start

    cold_study, cold_devices, cold_seconds = run()
    warm_study, warm_devices, warm_seconds = run()
    assert warm_devices == cold_devices  # byte-identical analysis
    cold_stages = cold_study.stage_timings
    warm_stages = warm_study.stage_timings
    assert "kernels" in cold_stages and "validation" in cold_stages
    assert "artifacts.load" in warm_stages
    assert "kernels" not in warm_stages and "validation" not in warm_stages

    speedup = cold_seconds / warm_seconds
    # The warm run skips both builds; anything under ~1.2x means the
    # cache load itself became the bottleneck.  Gated before the result
    # files are written so a failing run leaves them untouched.
    assert speedup >= 1.2, (cold_seconds, warm_seconds)

    lines = [
        f"corpus: {len(backend.columns)} observations, "
        f"{len(backend.certificates)} certificates, "
        f"{len(backend.scan_meta)} scans; full analysis to tracked devices",
        "",
        f"{'run':<10} {'seconds':>9}  stages",
        f"{'cold':<10} {cold_seconds:>9.3f}  miss → build kernels + "
        "validation, persist artifacts",
        f"{'warm':<10} {warm_seconds:>9.3f}  hit → "
        f"{warm_stages['artifacts.load']:.3f}s artifact load, no builds",
        "",
        f"end-to-end warm speedup: {speedup:.1f}x",
    ]
    record_result("\n".join(lines), name="perf_end_to_end_cache")
    _update_bench_json(results_dir, {
        "end_to_end_seconds": {
            "cold": round(cold_seconds, 4),
            "warm": round(warm_seconds, 4),
            "speedup": round(speedup, 2),
        },
    })


# The smaps_rollup USS reader now lives in the observability layer
# (repro.obs.resources.uss_bytes, imported above as _uss_bytes): the
# live plane's ResourceSampler publishes the same reading continuously
# as the process.uss_bytes gauge.


def _mapped_worker_probe(dataset):
    """Runs in a pool worker: query the mapped columns, report USS.

    The dataset argument arrives pickled by *path* (the mapped-dataset
    contract), so the worker re-maps the container rather than
    deserializing a copy.  The query touches only mapped columns — no
    CSR index build — mirroring a column-scan workload.
    """
    baseline = _uss_bytes()
    distinct = len(set(dataset.columns.ip))
    return distinct, baseline, _uss_bytes()


def test_perf_mmap(paper_synthetic, results_dir, record_result, tmp_path):
    """The format 3 substrate: O(1) opens and shared-page fan-out.

    Two measurements over the paper-scale corpus, saved once as a legacy
    v2 zip archive and once as a native format 3 container:

    * **open-to-first-query** — ``load_dataset`` + a distinct-IP count
      over the full ip column, cold each round.  The v2 path parses
      every certificate and rehydrates every row before the first answer;
      the mapped path validates a trailer and pages in one int column.
      Acceptance: mapped ≥10× faster (minimum over alternating rounds).
    * **per-worker USS** — four pool workers each receive the mapped
      dataset (pickled as its container path), re-map it, and run the
      column query; each reports Private_Clean + Private_Dirty from
      ``/proc/self/smaps_rollup`` before and after.  Because the columns
      live in the shared page cache, the increment a worker adds must be
      a small fraction of the corpus.  Acceptance: mean incremental USS
      ≤25% of the materialized dataset size (the container's bytes).
      Skipped gracefully where smaps_rollup is unavailable.

    Both gates run *before* any result file is written.
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 re-verifies every kernel build; "
                    "open timings would be meaningless")
    from concurrent.futures import ProcessPoolExecutor

    from repro.io.store import load_dataset, save_dataset_v2

    v2_path = tmp_path / "corpus.v2.rpz"
    v3_path = tmp_path / "corpus.rpz"
    save_dataset_v2(paper_synthetic.scans, v2_path)
    save_dataset(paper_synthetic.scans, v3_path)
    container_bytes = v3_path.stat().st_size

    def open_to_first_query(path):
        gc.collect()
        start = time.perf_counter()
        dataset = load_dataset(path)
        distinct = len(set(dataset.build_columns().ip))
        return distinct, time.perf_counter() - start

    rounds = 3
    v2_distinct, v2_cost = open_to_first_query(v2_path)
    mapped_distinct, mapped_cost = open_to_first_query(v3_path)
    assert mapped_distinct == v2_distinct  # same answer from both substrates
    for _ in range(rounds - 1):
        v2_cost = min(v2_cost, open_to_first_query(v2_path)[1])
        mapped_cost = min(mapped_cost, open_to_first_query(v3_path)[1])
    open_speedup = v2_cost / mapped_cost

    # --- shared-page fan-out: per-worker memory of 4 mapped workers ---
    n_workers = 4
    uss_supported = _uss_bytes() is not None
    incremental = []
    if uss_supported:
        dataset = load_dataset(v3_path)
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            probes = list(
                pool.map(_mapped_worker_probe, [dataset] * n_workers)
            )
        for distinct, baseline, final in probes:
            assert distinct == mapped_distinct
            incremental.append(final - baseline)
    mean_incremental = (
        sum(incremental) / len(incremental) if incremental else None
    )

    # Acceptance gates, checked before any result file is written: a
    # failing (noisy) run must never refresh the committed trajectory.
    assert open_speedup >= 10.0, (v2_cost, mapped_cost)
    if uss_supported:
        assert mean_incremental <= 0.25 * container_bytes, (
            incremental, container_bytes
        )

    mib = 1024 * 1024
    corpus = paper_synthetic.scans
    lines = [
        f"corpus: {corpus.n_observations} observations, "
        f"{len(corpus.certificates)} certificates, {len(corpus)} scans; "
        f"container {container_bytes / mib:.1f} MiB",
        "",
        f"open-to-first-query (distinct IPs), minima over {rounds} rounds:",
        f"{'v2 zip (materializing)':<26} {v2_cost:>9.3f}s",
        f"{'format 3 (mapped)':<26} {mapped_cost:>9.3f}s",
        f"{'speedup':<26} {open_speedup:>8.1f}x",
    ]
    if uss_supported:
        lines += [
            "",
            f"per-worker USS increment ({n_workers} mapped workers, "
            "Private_Clean + Private_Dirty):",
            "  " + "  ".join(f"{delta / mib:.1f} MiB" for delta in incremental),
            f"mean {mean_incremental / mib:.1f} MiB = "
            f"{mean_incremental / container_bytes:.1%} of the container "
            "(gate: ≤25%)",
        ]
    else:
        lines += ["", "per-worker USS: skipped (no /proc/self/smaps_rollup)"]
    record_result("\n".join(lines), name="perf_mmap")
    _update_bench_json(results_dir, {
        "mmap": {
            "corpus": {
                "scans": len(corpus),
                "observations": corpus.n_observations,
                "certificates": len(corpus.certificates),
                "container_bytes": container_bytes,
            },
            "open_seconds": {
                "v2": round(v2_cost, 4),
                "mapped": round(mapped_cost, 4),
                "speedup": round(open_speedup, 2),
            },
            "worker_uss": None if not uss_supported else {
                "workers": n_workers,
                "incremental_bytes": incremental,
                "mean_incremental_bytes": round(mean_incremental),
                "fraction_of_container": round(
                    mean_incremental / container_bytes, 4
                ),
            },
            "rounds": rounds,
        },
    })


def _update_bench_json(results_dir, section: dict) -> None:
    """Read-modify-write ``BENCH_perf.json`` so the perf-trajectory and
    observability sections compose regardless of which test ran first.

    Every write also stamps the measurement environment: timings are only
    comparable across refreshes taken on the same machine, so a reviewer
    can tell an environment change from a real regression.
    """
    path = results_dir / "BENCH_perf.json"
    try:
        merged = json.loads(path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(section)
    merged["environment"] = {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def test_perf_obs_overhead(paper_synthetic, results_dir, record_result):
    """Tracing must be effectively free: the full analysis (validation →
    tracking) runs alternately untraced and fully traced over the warm
    paper corpus.  Whole-run wall clock is too noisy for a percent-level
    gate (scheduler/allocator spikes run to ±10 % on a ~1 s workload), so
    each mode's cost is the **sum of per-stage minima** across rounds:
    spikes land in different stages in different rounds and fall out of
    the minima, while real instrumentation overhead — present in every
    traced round — cannot.  Acceptance: <3 % with every span and counter
    live.
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "overhead ratios would be meaningless")
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs import runtime as obs_runtime
    from repro.study import Study

    stages = (
        "validation", "dedup", "feature_evaluations", "pipeline", "tracking",
    )
    detail = {}

    def run(observe):
        gc.collect()
        if observe:
            trace, metrics = Tracer(), MetricsRegistry()
            with obs_runtime.activated(trace, metrics):
                study = Study.from_synthetic(paper_synthetic, observe=True)
                study.tracked_devices()
            detail["spans"] = len(trace.spans)
            detail["counters"] = len(metrics.counters)
        else:
            study = Study.from_synthetic(paper_synthetic)
            study.tracked_devices()
        timings = study.stage_timings
        return {stage: timings[stage] for stage in stages}

    run(observe=False)  # warm the dataset-level caches out of the timings
    rounds = 4
    untraced = {stage: [] for stage in stages}
    traced = {stage: [] for stage in stages}
    for _ in range(rounds):
        for stage, cost in run(observe=False).items():
            untraced[stage].append(cost)
        for stage, cost in run(observe=True).items():
            traced[stage].append(cost)
    untraced_best = {stage: min(untraced[stage]) for stage in stages}
    traced_best = {stage: min(traced[stage]) for stage in stages}
    untraced_total = sum(untraced_best.values())
    traced_total = sum(traced_best.values())
    overhead = traced_total / untraced_total - 1.0

    assert detail["spans"] > 0 and detail["counters"] > 0
    # Acceptance gate: the observed pipeline is at most 3 % slower.
    # Checked before the result files are written: a noisy run that
    # fails the gate must not refresh the committed trajectory.
    assert overhead < 0.03, f"observability overhead {overhead:.2%}"

    lines = [
        f"full analysis over the paper corpus; per-stage minima over "
        f"{rounds} alternating rounds",
        "",
        f"{'stage':<22} {'untraced':>10} {'traced':>10} {'delta':>8}",
    ]
    for stage in stages:
        delta = traced_best[stage] / untraced_best[stage] - 1.0
        lines.append(
            f"{stage:<22} {untraced_best[stage]:>9.3f}s "
            f"{traced_best[stage]:>9.3f}s {delta:>7.1%}"
        )
    lines += [
        f"{'total':<22} {untraced_total:>9.3f}s {traced_total:>9.3f}s "
        f"{overhead:>7.1%}",
        "",
        f"traced runs recorded {detail['spans']} spans and "
        f"{detail['counters']} counters",
    ]
    record_result("\n".join(lines), name="perf_obs_overhead")
    _update_bench_json(results_dir, {
        "observability": {
            "untraced_seconds": round(untraced_total, 4),
            "traced_seconds": round(traced_total, 4),
            "overhead_fraction": round(overhead, 4),
            "rounds": rounds,
            "spans": detail["spans"],
            "counters": detail["counters"],
        },
    })


def test_perf_obs_live(paper_synthetic, results_dir, record_result, tmp_path):
    """The live plane must stay out of the pipeline's way.

    Same per-stage-minima discipline as ``test_perf_obs_overhead``, but
    the observed side runs with the *entire* live plane active: the
    ``/metrics``/``/healthz``/``/vars`` HTTP endpoint up and scraped
    continuously from a background thread, a ``RotatingJsonlSink``
    flushing every completed span, a ``LatencyRecorder`` bucketing stage
    latencies, a ``ResourceSampler`` publishing ``process.*`` gauges at
    5 Hz, and a bounded span tail (``retain``) — the daemon
    configuration, not the batch one.  Three gates, all asserted before
    any result file is written:

    * live overhead < 5 % (the batch <3 % gate is unchanged and still
      enforced by ``test_perf_obs_overhead``);
    * ``/metrics`` scrape p50 < 50 ms over a fully populated registry
      while two hammer threads scrape concurrently;
    * the streaming sink sustains its measured spans/sec throughput
      (recorded into the trajectory; the pipeline gate above already
      bounds its cost in situ).
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "overhead ratios would be meaningless")
    import statistics
    import threading
    import urllib.request

    from repro.obs import (
        LatencyRecorder,
        LiveServer,
        MetricsRegistry,
        RotatingJsonlSink,
        Tracer,
    )
    from repro.obs import runtime as obs_runtime
    from repro.obs.resources import ResourceSampler

    stages = (
        "validation", "dedup", "feature_evaluations", "pipeline", "tracking",
    )
    detail = {}

    def run(live):
        gc.collect()
        if not live:
            study = Study.from_synthetic(paper_synthetic)
            study.tracked_devices()
            timings = study.stage_timings
            return {stage: timings[stage] for stage in stages}
        trace, metrics = Tracer(process="live-bench"), MetricsRegistry()
        trace.retain = 4096
        trace.add_sink(LatencyRecorder(metrics))
        sink = RotatingJsonlSink(
            tmp_path / "live-trace.jsonl", max_bytes=1 << 20, max_files=2
        )
        trace.add_sink(sink)
        sampler = ResourceSampler(metrics, interval=0.2)
        server = LiveServer(trace, metrics).start()
        stop = threading.Event()

        def scrape_loop():
            while not stop.is_set():
                try:
                    urllib.request.urlopen(
                        server.url + "/metrics", timeout=5
                    ).read()
                except OSError:
                    pass
                stop.wait(0.05)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        sampler.start()
        scraper.start()
        try:
            with obs_runtime.activated(trace, metrics):
                study = Study.from_synthetic(paper_synthetic, observe=True)
                study.tracked_devices()
        finally:
            stop.set()
            scraper.join(timeout=5)
            sampler.stop()
            server.stop()
            sink.close()
        detail["spans_streamed"] = sink.seen
        detail["spans_written"] = sink.written
        detail["scrapes"] = server.requests
        detail["trace"], detail["metrics"] = trace, metrics
        timings = study.stage_timings
        return {stage: timings[stage] for stage in stages}

    run(live=False)  # warm the dataset-level caches out of the timings
    rounds = 4
    off = {stage: [] for stage in stages}
    live = {stage: [] for stage in stages}
    for _ in range(rounds):
        for stage, cost in run(live=False).items():
            off[stage].append(cost)
        for stage, cost in run(live=True).items():
            live[stage].append(cost)
    off_total = sum(min(off[stage]) for stage in stages)
    live_total = sum(min(live[stage]) for stage in stages)
    overhead = live_total / off_total - 1.0

    # --- /metrics scrape latency over the populated registry, under load ---
    trace, metrics = detail.pop("trace"), detail.pop("metrics")
    server = LiveServer(trace, metrics).start()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            try:
                urllib.request.urlopen(server.url + "/metrics", timeout=5).read()
            except OSError:
                pass

    hammers = [threading.Thread(target=hammer, daemon=True) for _ in range(2)]
    for thread in hammers:
        thread.start()
    scrape_costs = []
    payload = 0
    for _ in range(100):
        begin = time.perf_counter()
        payload = len(
            urllib.request.urlopen(server.url + "/metrics", timeout=5).read()
        )
        scrape_costs.append(time.perf_counter() - begin)
    stop.set()
    for thread in hammers:
        thread.join(timeout=5)
    server.stop()
    scrape_p50 = statistics.median(scrape_costs)
    scrape_p99 = sorted(scrape_costs)[98]

    # --- streaming sink throughput (spans/second through the sink) ---
    throughput_sink = RotatingJsonlSink(
        tmp_path / "throughput.jsonl", max_bytes=4 << 20, max_files=2
    )
    bench_trace = Tracer(process="sink-bench")
    bench_trace.retain = 1024
    bench_trace.add_sink(throughput_sink)
    n_spans = 20_000
    begin = time.perf_counter()
    for _ in range(n_spans):
        with bench_trace.span("bench/span"):
            pass
    sink_elapsed = time.perf_counter() - begin
    throughput_sink.close()
    spans_per_sec = n_spans / sink_elapsed

    # Acceptance gates, all checked before any result file is written.
    assert detail["spans_streamed"] > 0 and detail["scrapes"] > 0
    assert overhead < 0.05, f"live-plane overhead {overhead:.2%}"
    assert scrape_p50 < 0.05, f"/metrics scrape p50 {scrape_p50 * 1e3:.1f}ms"

    lines = [
        f"full analysis over the paper corpus; per-stage minima over "
        f"{rounds} alternating rounds",
        f"live plane: endpoint scraped every 50ms, every span streamed, "
        f"resources sampled at 5Hz, retain=4096",
        "",
        f"{'plane off':<14} {off_total:>9.3f}s",
        f"{'plane live':<14} {live_total:>9.3f}s",
        f"{'overhead':<14} {overhead:>8.1%}  (gate: <5%)",
        "",
        f"/metrics scrape ({payload} bytes, 2 concurrent hammer threads): "
        f"p50 {scrape_p50 * 1e3:.2f}ms, p99 {scrape_p99 * 1e3:.2f}ms "
        f"(gate: p50 <50ms)",
        f"streaming sink: {spans_per_sec:,.0f} spans/s "
        f"({detail['spans_streamed']} pipeline spans streamed, "
        f"{detail['scrapes']} scrapes served during the run)",
    ]
    record_result("\n".join(lines), name="perf_obs_live")
    _update_bench_json(results_dir, {
        "observability_live": {
            "off_seconds": round(off_total, 4),
            "live_seconds": round(live_total, 4),
            "overhead_fraction": round(overhead, 4),
            "scrape_p50_seconds": round(scrape_p50, 5),
            "scrape_p99_seconds": round(scrape_p99, 5),
            "scrape_payload_bytes": payload,
            "sink_spans_per_second": round(spans_per_sec),
            "spans_streamed": detail["spans_streamed"],
            "spans_written": detail["spans_written"],
            "scrapes_during_run": detail["scrapes"],
            "rounds": rounds,
        },
    })


def test_perf_generation(paper_synthetic, results_dir, record_result, tmp_path):
    """Direct-to-columnar generation vs the legacy row path.

    Two measurements over the warm paper world (certificate building is
    paid once by the session fixture and excluded from both sides):

    * **throughput** — a stride-4 day subset of both campaigns is scanned
      twice per round, once through the legacy row path
      (``run_rows`` + ``ObservationColumns.from_scans``) and once through
      the shard path (``run_shard`` + ``merge_shards``).  As in the other
      perf benches, each side's cost is the minimum over alternating
      rounds; the first round also checks the two substrates agree
      observation-for-observation.  Acceptance: columnar ≥2× the row
      path's observations/second.
    * **peak RSS of corpus synthesis** — ``generate_streamed`` (shards
      flush straight into the ``.rpz``) vs ``generate`` + ``save_dataset``
      (corpus fully columnarized in RAM first), same small world, under
      ``tracemalloc``.  The archives must come out bitwise identical
      (equal incremental digests), with the streamed peak strictly lower.

    Both gates run *before* any result file is written.
    """
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 replays the row path inside "
                    "collect; generation timings would be meaningless")
    world = paper_synthetic.world
    schedule = sorted(
        ((campaign, day)
         for campaign in paper_synthetic.campaigns
         for day in campaign.scan_days[::4]),
        key=lambda task: (task[1], task[0].name),
    )

    def row_run():
        engine = ScanEngine(world)
        scans = [engine.run_rows(campaign, day) for campaign, day in schedule]
        return scans, ObservationColumns.from_scans(scans)

    def columnar_run():
        engine = ScanEngine(world)
        shards = [engine.run_shard(campaign, day) for campaign, day in schedule]
        columns, _ = merge_shards(shards)
        return shards, columns

    def timed(compute):
        gc.collect()
        start = time.perf_counter()
        value = compute()
        return value, time.perf_counter() - start

    rounds = 3
    (row_scans, row_columns), row_cost = timed(row_run)
    (shards, columns), columnar_cost = timed(columnar_run)
    # One-time parity: same rows, same interning, bitwise.
    assert columns_equal(columns, row_columns)
    for shard, row_scan in zip(shards, row_scans):
        lazy = shard_scan(shard)
        assert (lazy.day, lazy.source) == (row_scan.day, row_scan.source)
        assert lazy.observations == row_scan.observations
    for _ in range(rounds - 1):
        row_cost = min(row_cost, timed(row_run)[1])
        columnar_cost = min(columnar_cost, timed(columnar_run)[1])
    n_observations = len(columns)
    row_rate = n_observations / row_cost
    columnar_rate = n_observations / columnar_cost
    speedup = columnar_rate / row_rate

    # --- streamed vs in-RAM corpus synthesis, under tracemalloc ---
    config = WorldConfig(
        seed=11, n_devices=420, n_websites=150, n_generic_access=40,
        n_enterprise=10, n_hosting=8,
    )

    def peak_of(compute):
        gc.collect()
        tracemalloc.start()
        try:
            value = compute()
            return value, tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    receipt, streamed_peak = peak_of(
        lambda: generate_streamed(config, tmp_path / "streamed.rpz",
                                  scan_stride=2)
    )
    (built, memory_digest), memory_peak = peak_of(
        lambda: (
            dataset := generate(config, scan_stride=2),
            save_dataset(dataset.scans, tmp_path / "memory.rpz"),
        )
    )
    assert receipt.digest == memory_digest  # bitwise-identical archives
    assert receipt.n_observations == built.scans.n_observations
    assert streamed_peak < memory_peak, (streamed_peak, memory_peak)

    # Acceptance gate, checked before any result file is written: a
    # failing (noisy) run must never refresh the committed trajectory.
    assert speedup >= 2.0, (row_rate, columnar_rate)

    mib = 1024 * 1024
    lines = [
        f"throughput: {len(schedule)} scans, {n_observations} observations "
        f"over the warm paper world; minima over {rounds} rounds",
        "",
        f"{'substrate':<18} {'seconds':>9} {'obs/sec':>12}",
        f"{'rows':<18} {row_cost:>9.3f} {row_rate:>12,.0f}",
        f"{'columnar shards':<18} {columnar_cost:>9.3f} {columnar_rate:>12,.0f}",
        "",
        f"direct-to-columnar speedup: {speedup:.2f}x",
        "",
        f"synthesis peak (tracemalloc, {receipt.n_observations} observations, "
        f"{receipt.n_scans} scans):",
        f"{'streamed .rpz':<18} {streamed_peak / mib:>8.1f} MiB",
        f"{'in-RAM + save':<18} {memory_peak / mib:>8.1f} MiB",
        f"archives bitwise identical (digest {receipt.digest[:16]}…)",
    ]
    record_result("\n".join(lines), name="perf_generation")
    _update_bench_json(results_dir, {
        "generation": {
            "corpus": {
                "scans": len(schedule),
                "observations": n_observations,
            },
            "row_seconds": round(row_cost, 4),
            "columnar_seconds": round(columnar_cost, 4),
            "row_obs_per_second": round(row_rate),
            "columnar_obs_per_second": round(columnar_rate),
            "speedup": round(speedup, 2),
            "rounds": rounds,
            "streamed_peak_bytes": streamed_peak,
            "in_memory_peak_bytes": memory_peak,
            "peak_ratio": round(streamed_peak / memory_peak, 3),
        },
    })
