"""Performance benchmarks of the substrates themselves.

Not a paper experiment — these track the cost of the building blocks that
dominate whole-corpus runs: DER round-trips, RSA generation/signing, scan
execution, and the linking inner loop.  pytest-benchmark's timing table is
the artifact.
"""

import random

import pytest

from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.scanner.campaign import ScanCampaign
from repro.scanner.engine import ScanEngine
from repro.x509.certificate import Certificate
from repro.x509.keys import generate_keypair


@pytest.fixture(scope="module")
def sample_cert(paper_study):
    fingerprint = next(iter(paper_study.invalid))
    return paper_study.dataset.certificate(fingerprint)


def test_perf_der_encode(benchmark, sample_cert):
    blob = sample_cert.to_der()

    def encode():
        # Bypass the instance cache by re-signing into a fresh object.
        return Certificate.from_der(blob).to_der()

    assert benchmark(encode) == blob


def test_perf_der_parse(benchmark, sample_cert):
    blob = sample_cert.to_der()
    parsed = benchmark(Certificate.from_der, blob)
    assert parsed.fingerprint == sample_cert.fingerprint


def test_perf_keygen_128(benchmark):
    counter = iter(range(10 ** 9))

    def generate():
        return generate_keypair(random.Random(next(counter)), 128)

    pair = benchmark(generate)
    assert pair.public.bits <= 128


def test_perf_sign_verify(benchmark):
    pair = generate_keypair(random.Random(1), 128)
    message = b"tbs bytes" * 20

    def sign_and_verify():
        signature = pair.private.sign(message)
        assert pair.public.verify(message, signature)
        return signature

    benchmark(sign_and_verify)


def test_perf_single_scan(benchmark, paper_synthetic):
    world = paper_synthetic.world
    engine = ScanEngine(world)
    day = world.config.start_day + 400
    campaign = ScanCampaign(name="perf", scan_days=(day,))

    scan = benchmark.pedantic(
        lambda: engine.run(campaign, day), rounds=3, iterations=1
    )
    assert len(scan) > 0


def test_perf_public_key_linking(benchmark, paper_study):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)

    result = benchmark.pedantic(
        lambda: link_on_feature(dataset, fingerprints, Feature.PUBLIC_KEY),
        rounds=3,
        iterations=1,
    )
    assert result.total_linked > 0


def test_perf_full_validation(benchmark, paper_synthetic):
    from repro.core.validation import validate_dataset

    dataset = paper_synthetic.scans
    trust_store = paper_synthetic.world.trust_store

    report = benchmark.pedantic(
        lambda: validate_dataset(dataset, trust_store), rounds=1, iterations=1
    )
    assert report.considered > 0
