"""Performance benchmarks of the substrates themselves.

Not a paper experiment — these track the cost of the building blocks that
dominate whole-corpus runs: DER round-trips, RSA generation/signing, scan
execution, the linking inner loop, the columnar observation index, and the
per-stage pipeline costs.  pytest-benchmark's timing table is the artifact,
plus two rendered tables in ``results/``: ``perf_stage_timings.txt`` and
``perf_index_speedup.txt``.
"""

import random
import time

import pytest

from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.scanner.campaign import ScanCampaign
from repro.scanner.engine import ScanEngine
from repro.x509.certificate import Certificate
from repro.x509.keys import generate_keypair


@pytest.fixture(scope="module")
def sample_cert(paper_study):
    fingerprint = next(iter(paper_study.invalid))
    return paper_study.dataset.certificate(fingerprint)


def test_perf_der_encode(benchmark, sample_cert):
    blob = sample_cert.to_der()

    def encode():
        # Bypass the instance cache by re-signing into a fresh object.
        return Certificate.from_der(blob).to_der()

    assert benchmark(encode) == blob


def test_perf_der_parse(benchmark, sample_cert):
    blob = sample_cert.to_der()
    parsed = benchmark(Certificate.from_der, blob)
    assert parsed.fingerprint == sample_cert.fingerprint


def test_perf_keygen_128(benchmark):
    counter = iter(range(10 ** 9))

    def generate():
        return generate_keypair(random.Random(next(counter)), 128)

    pair = benchmark(generate)
    assert pair.public.bits <= 128


def test_perf_sign_verify(benchmark):
    pair = generate_keypair(random.Random(1), 128)
    message = b"tbs bytes" * 20

    def sign_and_verify():
        signature = pair.private.sign(message)
        assert pair.public.verify(message, signature)
        return signature

    benchmark(sign_and_verify)


def test_perf_single_scan(benchmark, paper_synthetic):
    world = paper_synthetic.world
    engine = ScanEngine(world)
    day = world.config.start_day + 400
    campaign = ScanCampaign(name="perf", scan_days=(day,))

    scan = benchmark.pedantic(
        lambda: engine.run(campaign, day), rounds=3, iterations=1
    )
    assert len(scan) > 0


def test_perf_public_key_linking(benchmark, paper_study):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)

    result = benchmark.pedantic(
        lambda: link_on_feature(dataset, fingerprints, Feature.PUBLIC_KEY),
        rounds=3,
        iterations=1,
    )
    assert result.total_linked > 0


def test_perf_full_validation(benchmark, paper_synthetic):
    from repro.core.validation import validate_dataset

    dataset = paper_synthetic.scans
    trust_store = paper_synthetic.world.trust_store

    report = benchmark.pedantic(
        lambda: validate_dataset(dataset, trust_store), rounds=1, iterations=1
    )
    assert report.considered > 0


def test_perf_index_vs_naive_lookups(paper_study, record_result):
    """The tentpole speedup: CSR-indexed lookups vs the old row sweeps.

    The naive implementations below are the pre-columnar code paths
    (O(scans × observations) per certificate); the live ``ScanDataset``
    methods answer from the observation index in O(sightings).
    """
    dataset = paper_study.dataset
    index = dataset.index  # built once; excluded from per-lookup timings
    sample = list(dataset.certificates)[:: max(1, len(dataset.certificates) // 25)][:25]

    def naive_appearances(fingerprint):
        return [
            (scan_idx, obs.ip)
            for scan_idx, scan in enumerate(dataset.scans)
            for obs in scan.observations
            if obs.fingerprint == fingerprint
        ]

    def naive_handshake_of(fingerprint):
        for scan in dataset.scans:
            for obs in scan.observations:
                if obs.fingerprint == fingerprint and obs.handshake is not None:
                    return obs.handshake
        return None

    def naive_entities_of(fingerprint):
        return {
            obs.entity
            for scan in dataset.scans
            for obs in scan.observations
            if obs.fingerprint == fingerprint and obs.entity
        }

    pairs = [
        ("appearances", naive_appearances, dataset.appearances),
        ("handshake_of", naive_handshake_of, dataset.handshake_of),
        ("entities_of", naive_entities_of, dataset.entities_of),
    ]
    lines = [
        f"corpus: {dataset.n_observations} observations, "
        f"{len(dataset.certificates)} certificates; {len(sample)} lookups each",
        "",
        f"{'lookup':<14} {'row sweep':>12} {'indexed':>12} {'speedup':>9}",
    ]
    speedups = {}
    for name, naive, indexed in pairs:
        start = time.perf_counter()
        naive_results = [naive(fp) for fp in sample]
        naive_cost = time.perf_counter() - start
        start = time.perf_counter()
        fast_results = [indexed(fp) for fp in sample]
        fast_cost = time.perf_counter() - start
        assert naive_results == fast_results  # byte-identical answers
        speedups[name] = naive_cost / fast_cost if fast_cost else float("inf")
        lines.append(
            f"{name:<14} {naive_cost * 1e3:>10.1f}ms {fast_cost * 1e3:>10.1f}ms "
            f"{speedups[name]:>8.0f}x"
        )
    assert index is dataset.index
    record_result("\n".join(lines), name="perf_index_speedup")
    # Acceptance: ≥2× on the index-heavy lookups (in practice orders of
    # magnitude — the naive path rescans the whole corpus per certificate).
    assert all(s >= 2.0 for s in speedups.values()), speedups


def test_perf_stage_timings(paper_study, record_result):
    """Per-stage wall-clock, from the Study instrumentation hook."""
    paper_study.tracked_devices()  # pulls every upstream stage through cache
    timings = paper_study.stage_timings
    expected = ("validation", "dedup", "feature_evaluations", "pipeline", "tracking")
    assert all(stage in timings for stage in expected)
    total = sum(timings[stage] for stage in expected)
    lines = [f"{'stage':<22} {'seconds':>9} {'share':>7}"]
    for stage in expected:
        lines.append(
            f"{stage:<22} {timings[stage]:>9.3f} {timings[stage] / total:>6.1%}"
        )
    lines.append(f"{'total':<22} {total:>9.3f}")
    record_result("\n".join(lines), name="perf_stage_timings")
