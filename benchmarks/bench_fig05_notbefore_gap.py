"""Figure 5 — first-advertised date minus Not Before over ephemerals.

Paper: a bimodal distribution over single-scan invalid certificates —
~30 % generated the very day they were first seen, ~70 % within four days
(devices reissuing just before the scan), ~20 % more than 1,000 days
(firmware-epoch clocks), and 2.9 % negative (clocks running ahead).
"""

from repro.core.analysis.longevity import ephemeral_fingerprints, reissue_gap
from repro.stats.tables import format_pct, render_table


def test_fig05_reissue_gap(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    def run():
        ephemerals = ephemeral_fingerprints(dataset, paper_study.invalid)
        return ephemerals, reissue_gap(dataset, ephemerals)

    ephemerals, gap = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = [
        ["same day", "~30%", format_pct(gap.same_day_fraction)],
        ["< 4 days", "~70%", format_pct(gap.within_four_days_fraction)],
        ["> 1000 days", "~20%", format_pct(gap.over_1000_days_fraction)],
        ["negative (clock ahead)", "2.9%", format_pct(gap.negative_fraction)],
        ["max gap (days)", "42,091", f"{gap.cdf.max:,.0f}"],
    ]
    lines = [
        f"Figure 5 — reissue gap over {len(ephemerals):,} ephemeral certificates",
        render_table(["statistic", "paper", "ours"], rows),
    ]
    record_result("\n".join(lines), "fig05_notbefore_gap")

    # Shape: bimodal — dominant near-zero mode plus a 1000+-day tail.
    assert gap.within_four_days_fraction > 0.5
    assert 0.05 < gap.over_1000_days_fraction < 0.35
    assert 0.0 < gap.negative_fraction < 0.10
    assert gap.same_day_fraction > 0.1
