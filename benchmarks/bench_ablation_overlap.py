"""Ablation — the §6.3.2 lifetime-overlap tolerance.

The paper allows linked certificates' lifetimes to overlap on exactly one
scan (a device changing address mid-scan can expose two certificates in
one sweep).  This sweep shows the trade-off: tolerance 0 shreds genuine
chains at every mid-scan reissue; tolerance ≥2 starts merging distinct
devices.
"""

from repro.core.features import Feature
from repro.core.linking import link_on_feature
from repro.stats.tables import format_pct, render_table

from _truth import device_index, group_purity


def test_ablation_overlap_allowance(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    fingerprints = list(paper_study.unique_invalid)
    truth = device_index(dataset)

    def sweep():
        return {
            allowance: link_on_feature(
                dataset, fingerprints, Feature.PUBLIC_KEY, allowance
            )
            for allowance in (0, 1, 2, 3)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    linked = {}
    purity = {}
    for allowance, result in results.items():
        linked[allowance] = result.total_linked
        purity[allowance] = group_purity(result.groups, truth)
        rows.append(
            [
                allowance,
                result.total_linked,
                len(result.groups),
                result.rejected_values,
                format_pct(purity[allowance], 2),
            ]
        )
    lines = [
        "Ablation — lifetime-overlap tolerance for Public Key linking"
        " (paper uses 1)",
        render_table(
            ["allowed overlap", "linked certs", "groups",
             "rejected values", "group purity"],
            rows,
        ),
    ]
    record_result("\n".join(lines), "ablation_overlap")

    # Tolerance 1 links more than 0 (mid-scan reissues are common)...
    assert linked[1] > linked[0]
    # ...while wider tolerances keep admitting more shared-value groups
    # whose purity cannot improve.
    assert linked[2] >= linked[1]
    assert purity[1] >= purity[2] >= purity[3]
    assert purity[1] > 0.9
