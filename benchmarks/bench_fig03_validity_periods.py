"""Figure 3 — CDF of validity periods, valid vs invalid.

Paper: valid certificates have tight windows (median 1.1 years, p90 3.1);
invalid ones are extreme (median 20 years, p90 25, some beyond a million
days) and 5.38 % have *negative* validity periods.
"""

from repro.core.analysis.longevity import validity_periods
from repro.stats.tables import format_pct, render_table


def test_fig03_validity_periods(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    invalid_cdf, valid_cdf = benchmark.pedantic(
        lambda: (
            validity_periods(dataset, paper_study.invalid),
            validity_periods(dataset, paper_study.valid),
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        ["valid median", "1.1y", f"{valid_cdf.median / 365:.1f}y"],
        ["valid p90", "3.1y", f"{valid_cdf.percentile(0.9) / 365:.1f}y"],
        ["invalid median", "20y", f"{invalid_cdf.median / 365:.1f}y"],
        ["invalid p90", "25y", f"{invalid_cdf.percentile(0.9) / 365:.1f}y"],
        ["invalid negative", "5.38%", format_pct(invalid_cdf.at(-1))],
        ["invalid max (days)", ">1,000,000", f"{invalid_cdf.max:,.0f}"],
    ]
    lines = [
        "Figure 3 — validity periods",
        render_table(["statistic", "paper", "ours"], rows),
        "",
        "CDF series (days → fraction):",
    ]
    for days in (0, 365, 1125, 3650, 7300, 9125, 100_000):
        lines.append(
            f"  {days:>7d}d  valid {valid_cdf.at(days):.3f}  invalid {invalid_cdf.at(days):.3f}"
        )
    record_result("\n".join(lines), "fig03_validity_periods")

    assert 300 <= valid_cdf.median <= 800            # ≈1.1 years
    assert 5000 <= invalid_cdf.median <= 9000        # ≈20 years
    assert 0.01 < invalid_cdf.at(-1) < 0.12          # negative periods exist
    assert invalid_cdf.max > 100_000                 # the year-3000 tail
    assert valid_cdf.at(-1) == 0.0                   # no negative valid windows
