"""Ground-truth helpers shared by the ablation benches.

The simulator knows which device served every observation; these helpers
index that truth once so ablations can score methodology variants with
real precision/recall — the validation the paper itself lacked.
"""

from __future__ import annotations


def device_index(dataset) -> dict[bytes, frozenset[str]]:
    """fingerprint → set of ground-truth device entities that served it."""
    index: dict[bytes, set[str]] = {}
    for scan in dataset.scans:
        for obs in scan.observations:
            if obs.entity.startswith("device:"):
                index.setdefault(obs.fingerprint, set()).add(obs.entity)
    return {fp: frozenset(entities) for fp, entities in index.items()}


def pairwise_precision(groups, truth: dict[bytes, frozenset[str]]) -> float:
    """Fraction of same-group certificate pairs served by the same device.

    Finer-grained than :func:`group_purity`: splitting a mixed group into
    per-vendor subgroups improves this even when the subgroups still mix
    devices of one vendor.
    """
    good = total = 0
    for group in groups:
        members = [truth.get(fp, frozenset()) for fp in group.fingerprints]
        for i, devices_a in enumerate(members):
            for devices_b in members[i + 1:]:
                total += 1
                if devices_a & devices_b:
                    good += 1
    return good / total if total else 1.0


def group_purity(groups, truth: dict[bytes, frozenset[str]]) -> float:
    """Fraction of groups whose members all come from one device."""
    if not groups:
        return 1.0
    pure = 0
    for group in groups:
        devices: set[str] = set()
        for fingerprint in group.fingerprints:
            devices |= truth.get(fingerprint, frozenset())
        if len(devices) <= 1:
            pure += 1
    return pure / len(groups)
