"""Ablation — is location consistency a good proxy for ground truth?

The paper uses IP-/24-/AS-level consistency as a stand-in for the ground
truth it lacked, arguing the approach "forms a lower bound of the true
accuracy".  The simulator *has* ground truth, so this bench tests the
assumption directly: for every linkable field, compare AS-level
consistency against true group purity.
"""

from repro.stats.tables import format_pct, render_table

from _truth import device_index, group_purity


def test_ablation_consistency_vs_truth(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    truth = device_index(dataset)

    evaluations = benchmark.pedantic(
        paper_study.feature_evaluations, rounds=1, iterations=1
    )

    rows = []
    proxy_errors = []
    for feature, evaluation in evaluations.items():
        if evaluation.total_linked < 10:
            continue
        purity = group_purity(evaluation.result.groups, truth)
        consistency = evaluation.consistency
        rows.append(
            [
                feature.value,
                evaluation.total_linked,
                format_pct(consistency.ip_level, 1),
                format_pct(consistency.as_level, 1),
                format_pct(purity, 1),
            ]
        )
        proxy_errors.append((feature, consistency.as_level, purity))
    lines = [
        "Ablation — consistency proxies vs simulator ground truth",
        render_table(
            ["feature", "linked", "IP-consistency", "AS-consistency",
             "true group purity"],
            rows,
        ),
        "",
        "The paper's claim: consistency lower-bounds true accuracy, because",
        "dynamic reassignment depresses IP-level scores for correct links.",
        "Caveat the simulator exposes: timestamp fields (Not Before/After)",
        "can score high AS-consistency while being impure, because their",
        "false groups are single-scan coincidences that score trivially —",
        "supporting the paper's decision to drop them on other grounds.",
    ]
    record_result("\n".join(lines), "ablation_consistency_truth")

    # The paper's assumption holds in the simulator: for every field,
    # IP-level consistency is a (often very loose) lower bound on true
    # purity, and non-timestamp fields passing the 90 % AS-level bar are
    # genuinely pure.  Timestamp fields are the exception — their false
    # groups are single-scan coincidences with vacuously high consistency.
    from repro.core.features import Feature

    timestamp_fields = {Feature.NOT_BEFORE, Feature.NOT_AFTER}
    for feature, as_level, purity in proxy_errors:
        evaluation = evaluations[feature]
        if feature in timestamp_fields:
            # The exception the simulator exposes: dead-RTC and firmware
            # coincidence groups are single-scan, so every consistency
            # level scores vacuously high while purity is poor.
            continue
        assert evaluation.consistency.ip_level <= purity + 0.10, feature
        if as_level >= 0.90:
            assert purity > 0.85, f"{feature} passed the bar but is impure"
    # The timestamp pathology itself must be present — it is a finding.
    nb = evaluations[Feature.NOT_BEFORE]
    assert group_purity(nb.result.groups, truth) < nb.consistency.as_level
