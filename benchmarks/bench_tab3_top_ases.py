"""Table 3 — top hosting ASes for valid and invalid certificates.

Paper: valid certificates come from US hosting providers (GoDaddy,
Unified Layer, Amazon, SoftLayer); invalid ones from consumer access ISPs,
led by Deutsche Telekom, with Comcast, Vodafone, Telefonica Germany, and
Korea Telecom following.
"""

from repro.core.analysis.hosts import top_hosting_ases
from repro.stats.tables import format_count, render_table

PAPER_VALID_ASNS = {26496, 46606, 14618, 36351, 16509}
PAPER_INVALID_ASNS = {3320, 7922, 3209, 6805, 4766}


def test_tab3_top_ases(benchmark, paper_synthetic, paper_study, record_result):
    dataset = paper_study.dataset
    world = paper_synthetic.world

    valid_rows, invalid_rows = benchmark.pedantic(
        lambda: (
            top_hosting_ases(dataset, paper_study.valid,
                             world.routing.origin_as, world.registry, n=5),
            top_hosting_ases(dataset, paper_study.invalid,
                             world.routing.origin_as, world.registry, n=5),
        ),
        rounds=1,
        iterations=1,
    )

    def table(rows):
        return render_table(
            ["ASN", "name", "country", "certs"],
            [[f"#{asn}", name, country, format_count(count)]
             for asn, name, country, count in rows],
        )

    lines = [
        "Table 3 — top hosting ASes",
        "",
        "valid (paper: GoDaddy, Unified Layer, Amazon, SoftLayer, Amazon):",
        table(valid_rows),
        "",
        "invalid (paper: Deutsche Telekom, Comcast, Vodafone, Telefonica DE, Korea Telecom):",
        table(invalid_rows),
    ]
    record_result("\n".join(lines), "tab3_top_ases")

    # Shape: valid tops are dominated by hosting ASes; invalid tops are
    # access ISPs, with German ISPs prominent.
    valid_asns = [row[0] for row in valid_rows]
    assert valid_asns[0] == 26496                      # GoDaddy leads
    assert len(set(valid_asns) & PAPER_VALID_ASNS) >= 3
    invalid_asns = {row[0] for row in invalid_rows}
    assert len(invalid_asns & PAPER_INVALID_ASNS) >= 3
    assert invalid_rows[0][0] == 3320   # Deutsche Telekom leads
    countries = [row[2] for row in invalid_rows]
    assert "DEU" in countries
