"""Figure 1 + §4.1 — the two-corpus discrepancy and its explanation.

Paper: on a day both operators scanned, each corpus misses hosts spread
across the whole IP space; grouping by BGP prefix shows many prefixes
always missing from one corpus (11,624 from Rapid7, 1,906 from Michigan),
and those blind spots explain most of the discrepancy (74.0 % / 62.6 %).
"""

import pytest

from repro.core.analysis.scans import blacklist_attribution, scan_discrepancy
from repro.stats.tables import format_pct, render_table


def _overlap_day(dataset):
    umich = {scan.day for scan in dataset.scans_from("umich")}
    rapid7 = {scan.day for scan in dataset.scans_from("rapid7")}
    shared = sorted(umich & rapid7)
    if not shared:
        pytest.skip("schedules produced no shared day")
    return shared[len(shared) // 2]


def test_fig01_per_slash8_uniqueness(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    day = _overlap_day(dataset)

    rows = benchmark.pedantic(
        lambda: scan_discrepancy(dataset, day), rounds=3, iterations=1
    )

    populated = [row for row in rows if row.hosts_a + row.hosts_b > 50]
    lines = [
        f"Figure 1 — fraction of hosts unique to each corpus per /8 (day {day})",
        "paper: 'missing' hosts appear spread throughout the IP space",
        "",
        render_table(
            ["/8", "hosts umich", "hosts rapid7", "uniq umich", "uniq rapid7"],
            [
                [f"{row.network}.0.0.0/8", row.hosts_a, row.hosts_b,
                 format_pct(row.unique_to_a_fraction),
                 format_pct(row.unique_to_b_fraction)]
                for row in populated[:20]
            ],
        ),
    ]
    record_result("\n".join(lines), "fig01_scan_discrepancy")

    # Shape: the discrepancy is not confined to a few /8s.
    networks_with_unique = [
        row for row in populated
        if row.unique_to_a_fraction > 0 or row.unique_to_b_fraction > 0
    ]
    assert len(networks_with_unique) >= max(3, len(populated) // 3)


def test_fig01_blacklist_attribution(benchmark, paper_synthetic, paper_study, record_result):
    dataset = paper_study.dataset
    _overlap_day(dataset)  # skip if no shared day
    table = paper_synthetic.world.routing.table_at(0)

    def prefix_of(ip):
        route = table.lookup(ip)
        return route.prefix if route else None

    attribution = benchmark.pedantic(
        lambda: blacklist_attribution(dataset, prefix_of), rounds=1, iterations=1
    )

    lines = [
        "§4.1 — blacklisting hypothesis",
        f"overlap days: {len(attribution.overlap_days)} (paper: 8)",
        f"prefixes covered by both: {attribution.prefixes_covered_by_both} (paper: 285,519)",
        f"always missing from umich:  {attribution.prefixes_always_missing_from_a} (paper: 1,906)",
        f"always missing from rapid7: {attribution.prefixes_always_missing_from_b} (paper: 11,624)",
        f"mean hosts only in umich:  {attribution.mean_hosts_only_in_a:.0f} (paper: 282,620)",
        f"mean hosts only in rapid7: {attribution.mean_hosts_only_in_b:.0f} (paper: 84,646)",
        f"explained by blind spots: umich-only {format_pct(attribution.fraction_explained_a)}"
        f" (paper 74.0%), rapid7-only {format_pct(attribution.fraction_explained_b)}"
        f" (paper 62.6%)",
    ]
    record_result("\n".join(lines), "fig01_blacklist_attribution")

    # Shape: Rapid7 has the bigger blind spot; blind spots explain a
    # meaningful share of the discrepancy.
    assert (
        attribution.prefixes_always_missing_from_b
        > attribution.prefixes_always_missing_from_a
    )
    assert attribution.fraction_explained_a > 0.3
