"""Figure 2 — valid/invalid certificates per scan, per campaign.

Paper: both campaigns show growing invalid counts; per-scan invalid
fraction ranges 59.6–73.7 % (65.0 % average); across the whole corpus
87.9 % of certificates are invalid.
"""

from repro.core.analysis.scans import invalid_fraction_summary, per_scan_counts
from repro.core.analysis.trends import growth_comparison
from repro.simtime import format_day
from repro.stats.tables import format_pct, render_table


def test_fig02_per_scan_counts(benchmark, paper_study, record_result):
    dataset = paper_study.dataset
    report = paper_study.validation()

    counts = benchmark.pedantic(
        lambda: per_scan_counts(dataset, report), rounds=3, iterations=1
    )

    low, mean, high = invalid_fraction_summary(counts)
    lines = [
        "Figure 2 — certificates per scan",
        f"paper: invalid fraction per scan 59.6%..73.7% (avg 65.0%); overall 87.9%",
        f"ours : invalid fraction per scan {format_pct(low)}..{format_pct(high)} "
        f"(avg {format_pct(mean)}); overall {format_pct(report.invalid_fraction)}",
        "",
    ]
    sampled = counts[:: max(1, len(counts) // 12)]
    rows = [
        [format_day(c.day), c.source, c.n_valid, c.n_invalid, format_pct(c.invalid_fraction)]
        for c in sampled
    ]
    lines.append(render_table(["scan day", "source", "valid", "invalid", "% invalid"], rows))
    record_result("\n".join(lines), "fig02_cert_counts")

    # Shape assertions: invalid majority per scan, growth over time.
    assert 0.5 < mean < 0.8
    assert 0.80 < report.invalid_fraction < 0.95
    first_quarter = [c.n_invalid for c in counts[: len(counts) // 4]]
    last_quarter = [c.n_invalid for c in counts[-len(counts) // 4:]]
    assert sum(last_quarter) / len(last_quarter) > sum(first_quarter) / len(first_quarter)


def test_fig02_growth_forecast(benchmark, paper_study, record_result):
    """§5.4's closing forecast: invalid counts grow faster than valid."""
    dataset = paper_study.dataset
    counts = per_scan_counts(dataset, paper_study.validation())

    comparison = benchmark.pedantic(
        lambda: growth_comparison(counts), rounds=3, iterations=1
    )

    horizon = counts[-1].day + 2 * 365
    lines = [
        "§5.4 forecast — per-scan count growth (least squares)",
        render_table(
            ["population", "slope/year", "R²", "doubling (days)"],
            [
                ["invalid", f"{comparison.invalid.slope_per_year:+.0f}",
                 f"{comparison.invalid.r_squared:.3f}",
                 f"{comparison.invalid.doubling_days():.0f}"],
                ["valid", f"{comparison.valid.slope_per_year:+.0f}",
                 f"{comparison.valid.r_squared:.3f}",
                 "-" if comparison.valid.doubling_days() == float('inf')
                 else f"{comparison.valid.doubling_days():.0f}"],
            ],
        ),
        f"extrapolated invalid share two years past the dataset: "
        f"{format_pct(comparison.invalid_share_at(horizon))}",
    ]
    record_result("\n".join(lines), "fig02_growth_forecast")

    assert comparison.invalid_grows_faster
    assert comparison.invalid.slope_per_year > 0
    assert comparison.invalid_share_at(horizon) > counts[-1].invalid_fraction - 0.05
