"""Table 6 — per-field linking and IP/24/AS-level consistency.

Paper highlights: Public Key links the most certificates (23.3M) with
98.0 % AS-level but only 41.9 % IP-level consistency (FRITZ!Boxes behind
German daily-churn ISPs); Not Before/Not After and Issuer+Serial have
insufficient consistency and are excluded from the final pipeline;
CRL/AIA link few certificates but with very high IP-level consistency.
"""

from repro.core.features import Feature
from repro.stats.tables import format_count, format_pct, render_table

PAPER = {
    # feature: (total linked, uniquely linked, ip, /24, as)
    Feature.PUBLIC_KEY: ("23,276,298", "11,798,203", 0.419, 0.461, 0.980),
    Feature.NOT_BEFORE: ("16,301,321", "5,296,175", 0.535, 0.543, 0.630),
    Feature.COMMON_NAME: ("8,576,231", "1,794,118", 0.511, 0.533, 0.966),
    Feature.NOT_AFTER: ("6,235,419", "1,197,317", 0.512, 0.529, 0.582),
    Feature.ISSUER_SERIAL: ("4,193,744", "955,764", 0.482, 0.496, 0.893),
    Feature.SAN_LIST: ("2,484,652", "123,740", 0.522, 0.550, 0.975),
    Feature.CRL: ("389,264", "4,912", 0.858, 0.872, 0.952),
    Feature.AIA: ("377,310", "3,192", 0.857, 0.871, 0.951),
    Feature.OCSP: ("3,352", "185", 0.522, 0.550, 0.975),
    Feature.OID: ("593", "121", 0.839, 0.866, 0.926),
}


def test_tab6_linking_evaluation(benchmark, paper_study, record_result):
    evaluations = benchmark.pedantic(
        paper_study.feature_evaluations, rounds=1, iterations=1
    )

    rows = []
    for feature, (p_total, p_unique, p_ip, _p24, p_as) in PAPER.items():
        evaluation = evaluations[feature]
        consistency = evaluation.consistency
        rows.append(
            [
                feature.value,
                p_total, format_count(evaluation.total_linked),
                p_unique, format_count(evaluation.uniquely_linked),
                format_pct(p_ip), format_pct(consistency.ip_level),
                format_pct(p_as), format_pct(consistency.as_level),
            ]
        )
    lines = [
        "Table 6 — per-field linking performance",
        render_table(
            ["feature", "linked (paper)", "linked (ours)",
             "uniq (paper)", "uniq (ours)",
             "IP (paper)", "IP (ours)", "AS (paper)", "AS (ours)"],
            rows,
        ),
    ]
    record_result("\n".join(lines), "tab6_linking")

    pk = evaluations[Feature.PUBLIC_KEY]
    # Public Key links the most certificates of any field...
    assert pk.total_linked == max(e.total_linked for e in evaluations.values())
    # ...with high AS-level but much lower IP-level consistency.
    assert pk.consistency.as_level > 0.90
    assert pk.consistency.ip_level < 0.70
    # Issuer+Serial falls below the pipeline threshold (PlayBooks roam).
    assert evaluations[Feature.ISSUER_SERIAL].consistency.as_level < 0.90
    # CRL and AIA: few certificates, very high IP-level consistency.
    for feature in (Feature.CRL, Feature.AIA):
        evaluation = evaluations[feature]
        assert evaluation.total_linked < 0.1 * pk.total_linked
        assert evaluation.consistency.ip_level > 0.85
    # SAN links a meaningful population with near-perfect AS consistency
    # (FRITZ!Box myfritz.net names) but low IP consistency (daily churn).
    san = evaluations[Feature.SAN_LIST]
    assert san.consistency.as_level > 0.90
    assert san.consistency.ip_level < pk.consistency.as_level
