"""The online query plane at paper scale: latency, throughput, fan-out.

The PR 9 acceptance bench: ``repro serve`` over the paper-scale corpus
must answer point lookups with p50 < 5 ms and p99 < 50 ms, sustain
>= 5,000 queries/second of mixed traffic, and scale heavy queries
(census slices over thousands of certificates) to >= 2x single-worker
throughput with a 4-worker process pool.  Every gate is asserted before
any result file is written, so a failing run leaves ``BENCH_perf.json``
untouched.  Writes the ``serve`` section of ``results/BENCH_perf.json``
and ``results/perf_serve.txt``.

Measurement shape (closed-loop, Little's law): latency is gated at low
concurrency — 4 in-flight requests cannot hide queueing delay behind
pipelining — while throughput is gated at 32 connections across two
client loops, where per-request latency is allowed to grow as long as
the plane drains the aggregate load.  The load generator is the real
``repro loadgen`` engine, seeded from the server's own ``/sample``.
"""

import asyncio
import gc
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from bench_perf_substrates import _update_bench_json
from repro.core.features import link_parity_enabled
from repro.io import AnalysisEnvironment, save_dataset, save_environment
from repro.serve import QueryEngine, QueryServer, run_loadgen
from repro.serve.loadgen import build_workload

GATE_P50_MS = 5.0
GATE_P99_MS = 50.0
GATE_QPS = 5000.0
GATE_POOL_SPEEDUP = 2.0


def _pool_gate() -> float | None:
    """The fan-out gate, scaled to the machine's real parallelism.

    Four workers can only multiply throughput up to the core count: on
    >= 4 cores the full 2x gate applies; on 2-3 cores the gate degrades
    proportionally (2 cores -> 1.0x, i.e. the pool must at least not
    lose to in-process execution once IPC overhead is paid).  On a
    single core there is no parallelism for the pool to exploit and
    IPC overhead makes serial-vs-pooled a coin flip, so the speedup is
    recorded but not gated (None).  The measured core count is stamped
    into the results, so a cross-machine diff can tell gate scaling
    from a real regression.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return None
    return GATE_POOL_SPEEDUP if cpus >= 4 else max(1.0, cpus / 2.0)

#: Client loops driving the throughput run.  One asyncio loop saturates
#: around the server's own single-loop ceiling; two clients make the
#: server, not the generator, the measured bottleneck.
CLIENTS = 2


def _multi_client(url, paths, concurrency, clients=CLIENTS):
    """Aggregate qps over ``clients`` parallel loadgen loops."""
    shares = [list(paths[offset::clients]) for offset in range(clients)]
    reports = [None] * clients

    def run(position):
        reports[position] = run_loadgen(
            url, paths=shares[position],
            concurrency=max(1, concurrency // clients),
        )

    threads = [
        threading.Thread(target=run, args=(position,))
        for position in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    requests = sum(report.requests for report in reports)
    errors = sum(report.errors for report in reports)
    return requests / wall, requests, errors, wall


def test_perf_serve(paper_synthetic, results_dir, record_result, tmp_path):
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "serving timings would be meaningless")

    corpus = tmp_path / "corpus.rpz"
    environment = tmp_path / "env.rpe"
    cache_dir = tmp_path / "cache"
    save_dataset(paper_synthetic.scans, corpus)
    save_environment(
        AnalysisEnvironment.of_world(paper_synthetic.world), environment
    )

    engine = QueryEngine.open(
        corpus, environment, cache_dir=str(cache_dir)
    )
    gc.collect()
    started = time.perf_counter()
    engine.warm()
    warm_seconds = time.perf_counter() - started

    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    server = QueryServer(engine)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=60)

    sample = json.loads(engine.respond("/sample"))
    n_certs = len(engine.dataset.certificates)
    n_rows = engine.dataset.n_observations

    # --- point-lookup latency at low concurrency -----------------------------
    latency_paths = build_workload(sample, 4000, {"cert": 1}, seed=1)
    run_loadgen(server.url, paths=latency_paths[:512], concurrency=4)
    gc.collect()
    latency = run_loadgen(server.url, paths=latency_paths, concurrency=4)

    # --- mixed-traffic throughput at high concurrency ------------------------
    mixed_paths = build_workload(sample, 16000, None, seed=2)
    run_loadgen(server.url, paths=mixed_paths[:1024], concurrency=8)
    gc.collect()
    qps, thr_requests, thr_errors, thr_wall = _multi_client(
        server.url, mixed_paths, concurrency=32
    )

    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)

    # --- heavy-query fan-out: 4 pool workers vs in-process -------------------
    # census_slice() below the response cache recomputes per call, so
    # every timed request is real work over the invalid population.
    heavy_rounds = 12
    engine.census_slice("invalid")  # prime kernel + DER memos
    gc.collect()
    started = time.perf_counter()
    for _ in range(heavy_rounds):
        engine.census_slice("invalid")
    single_qps = heavy_rounds / (time.perf_counter() - started)

    pooled = QueryEngine.open(
        corpus, environment, workers=4, cache_dir=str(cache_dir)
    )
    pooled.warm()
    with ThreadPoolExecutor(max_workers=4) as drivers:
        # Prime: spins up the pool and warms each worker's memos.
        list(drivers.map(
            lambda _: pooled.census_slice("invalid"), range(4)
        ))
        gc.collect()
        started = time.perf_counter()
        list(drivers.map(
            lambda _: pooled.census_slice("invalid"), range(heavy_rounds)
        ))
        multi_qps = heavy_rounds / (time.perf_counter() - started)
    pooled.close()
    pool_speedup = multi_qps / single_qps

    # --- gates, before anything is written -----------------------------------
    assert latency.errors == 0 and thr_errors == 0
    assert latency.p50_ms < GATE_P50_MS, latency
    assert latency.p99_ms < GATE_P99_MS, latency
    assert qps >= GATE_QPS, (qps, thr_requests, thr_wall)
    pool_gate = _pool_gate()
    if pool_gate is not None:
        assert pool_speedup >= pool_gate, (single_qps, multi_qps, pool_gate)

    lines = [
        f"corpus: {n_certs} certificates, {n_rows} observations; "
        f"warm-up {warm_seconds:.2f}s",
        "",
        f"{'measurement':<34} {'value':>12}",
        f"{'lookup p50 (conc 4)':<34} {latency.p50_ms:>10.3f}ms",
        f"{'lookup p99 (conc 4)':<34} {latency.p99_ms:>10.3f}ms",
        f"{'lookup max (conc 4)':<34} {latency.max_ms:>10.3f}ms",
        f"{'mixed qps (conc 32, 2 clients)':<34} {qps:>12,.0f}",
        f"{'heavy qps, 1 worker':<34} {single_qps:>12.2f}",
        f"{'heavy qps, 4 workers':<34} {multi_qps:>12.2f}",
        "",
        f"gates: p50 < {GATE_P50_MS:.0f}ms, p99 < {GATE_P99_MS:.0f}ms, "
        f"qps >= {GATE_QPS:,.0f}, pool >= "
        + (f"{pool_gate:.1f}x" if pool_gate is not None else "(ungated)")
        + f" on {os.cpu_count()} core(s) (measured {pool_speedup:.2f}x) — "
        "all passed",
    ]
    record_result("\n".join(lines), name="perf_serve")
    _update_bench_json(results_dir, {
        "serve": {
            "certificates": n_certs,
            "observations": n_rows,
            "warm_seconds": round(warm_seconds, 3),
            "lookup": {
                "concurrency": 4,
                "requests": latency.requests,
                "p50_ms": round(latency.p50_ms, 3),
                "p99_ms": round(latency.p99_ms, 3),
                "max_ms": round(latency.max_ms, 3),
            },
            "throughput": {
                "concurrency": 32,
                "clients": CLIENTS,
                "requests": thr_requests,
                "qps": round(qps, 1),
            },
            "fanout": {
                "heavy_query": "census_slice(invalid)",
                "single_worker_qps": round(single_qps, 2),
                "four_worker_qps": round(multi_qps, 2),
                "speedup": round(pool_speedup, 2),
                "gate": round(pool_gate, 2) if pool_gate is not None else None,
                "cores": os.cpu_count(),
            },
        },
    })
