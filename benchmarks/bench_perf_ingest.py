"""O(day) incremental ingestion vs full rebuild, at paper scale.

The PR 7 acceptance bench: appending one scan day to the paper-scale
corpus — container delta-append plus delta-merged kernels — must beat a
full from-scratch rebuild (streaming container write plus cold kernel
builds) by >= 10x, while producing *bitwise identical* containers.  Both
gates are asserted before any result file is written, so a failing run
leaves ``BENCH_perf.json`` untouched.  Writes the ``ingest`` section of
``results/BENCH_perf.json`` and ``results/perf_ingest.txt``.

Scan-day shard generation is pre-paid outside both timings: scanning one
day costs the same either way and is not what the append path optimizes.
"""

import gc
import time

import pytest

from bench_perf_substrates import _update_bench_json
from repro.core.features import link_parity_enabled
from repro.datasets.synthetic import _world_campaigns
from repro.internet.population import WorldConfig
from repro.io.store import StreamingDatasetWriter, append_shards, load_dataset
from repro.scanner.engine import ScanEngine


def test_perf_ingest(results_dir, record_result, tmp_path):
    if link_parity_enabled():
        pytest.skip("REPRO_LINK_PARITY=1 doubles every stage's work; "
                    "ingestion timings would be meaningless")
    world, campaigns = _world_campaigns(
        WorldConfig(seed=2016, n_devices=2500, n_websites=850), scan_stride=1
    )
    engine = ScanEngine(world)
    schedule = sorted(
        ((day, campaign)
         for campaign in campaigns for day in campaign.scan_days),
        key=lambda task: (task[0], task[1].name),
    )
    last_day = max(day for day, _ in schedule)
    shards = [
        (day, engine.run_shard(campaign, day)) for day, campaign in schedule
    ]
    certificates = engine.certificate_store

    # --- full cold rebuild: every shard through the streaming writer ---
    full = tmp_path / "full.rpz"
    gc.collect()
    start = time.perf_counter()
    writer = StreamingDatasetWriter(full)
    for _, shard in shards:
        writer.add_shard(shard)
    writer.close(certificates)
    rebuild_container = time.perf_counter() - start

    cold = load_dataset(full)
    gc.collect()
    start = time.perf_counter()
    cold.index, cold.intervals, cold.feature_matrix
    rebuild_kernels = time.perf_counter() - start

    # --- the base corpus (everything but the last day) + warm kernels ---
    base_path = tmp_path / "base.rpz"
    writer = StreamingDatasetWriter(base_path)
    for day, shard in shards:
        if day != last_day:
            writer.add_shard(shard)
    writer.close(certificates)
    base = load_dataset(base_path)
    base.index, base.intervals, base.feature_matrix

    # --- O(day) append: container delta + delta-merged kernels ---
    # The append is cheap enough that single-shot timing is dominated by
    # disk writeback noise; best-of-3 is the usual latency estimator.
    # (The rebuild side runs once — noise there only slows it down.)
    tail = [shard for day, shard in shards if day == last_day]
    grown_path = tmp_path / "grown.rpz"
    append_total = None
    for trial in range(3):
        trial_path = tmp_path / f"grown-{trial}.rpz"
        gc.collect()
        start = time.perf_counter()
        grown = base.extend_from_shard(tail, certificates, trial_path)
        elapsed = time.perf_counter() - start
        if append_total is None or elapsed < append_total:
            append_total = elapsed
        trial_path.rename(grown_path)

    # Container-only timing, measured on appends to a fresh path.
    repeat_path = tmp_path / "grown2.rpz"
    append_container = None
    for _ in range(3):
        repeat_path.unlink(missing_ok=True)
        gc.collect()
        start = time.perf_counter()
        append_shards(base_path, tail, certificates, repeat_path)
        elapsed = time.perf_counter() - start
        if append_container is None or elapsed < append_container:
            append_container = elapsed

    # --- gates, before anything is written ---
    assert grown_path.read_bytes() == full.read_bytes()
    assert repeat_path.read_bytes() == full.read_bytes()
    assert memoryview(grown._observation_index._offsets).tobytes() == \
        memoryview(cold.index._offsets).tobytes()
    assert grown._feature_matrix.fingerprints == \
        cold.feature_matrix.fingerprints
    rebuild_total = rebuild_container + rebuild_kernels
    speedup = rebuild_total / append_total
    assert speedup >= 10, (rebuild_total, append_total)

    n_rows = cold.n_observations
    tail_rows = sum(len(shard) for shard in tail)
    lines = [
        f"corpus: {n_rows} observations over {len(shards)} scans; appended "
        f"day adds {tail_rows} rows across {len(tail)} scan(s)",
        "",
        f"{'path':<28} {'seconds':>9}",
        f"{'rebuild: container write':<28} {rebuild_container:>9.3f}",
        f"{'rebuild: kernel builds':<28} {rebuild_kernels:>9.3f}",
        f"{'rebuild: total':<28} {rebuild_total:>9.3f}",
        f"{'append: container only':<28} {append_container:>9.3f}",
        f"{'append: total (w/ kernels)':<28} {append_total:>9.3f}",
        "",
        f"append-vs-rebuild speedup: {speedup:.1f}x "
        "(containers and kernels bitwise identical)",
    ]
    record_result("\n".join(lines), name="perf_ingest")
    _update_bench_json(results_dir, {
        "ingest": {
            "observations": n_rows,
            "appended_rows": tail_rows,
            "seconds": {
                "rebuild_container": round(rebuild_container, 4),
                "rebuild_kernels": round(rebuild_kernels, 4),
                "rebuild_total": round(rebuild_total, 4),
                "append_container": round(append_container, 4),
                "append_total": round(append_total, 4),
            },
            "speedup": round(speedup, 2),
        },
    })
