"""Table 4 — device types behind the top-50 invalid issuers.

Paper (manual classification of the top 50 issuing CAs): 45.3 % home
routers/cable modems, 32.0 % unknown, 6.0 % VPN, 5.7 % remote storage,
4.3 % remote administration, 1.9 % firewall, 1.8 % IP camera, 2.6 % other.
"""

from repro.core.analysis.hosts import device_type_breakdown
from repro.stats.tables import format_pct, render_table

PAPER = {
    "Home router/cable modem": 0.453,
    "Unknown": 0.320,
    "VPN": 0.0604,
    "Remote storage": 0.0570,
    "Remote administration": 0.0427,
    "Firewall": 0.0192,
    "IP camera": 0.0178,
    "Other (IPTV, IP phone, Alternate CA, Printer)": 0.0262,
}


def test_tab4_device_types(benchmark, paper_study, record_result):
    dataset = paper_study.dataset

    breakdown = benchmark.pedantic(
        lambda: device_type_breakdown(dataset, paper_study.invalid, top_n_issuers=50),
        rounds=3,
        iterations=1,
    )

    rows = []
    for device_type, paper_share in sorted(PAPER.items(), key=lambda kv: -kv[1]):
        rows.append(
            [device_type, format_pct(paper_share),
             format_pct(breakdown.get(device_type, 0.0))]
        )
    lines = [
        "Table 4 — device types of the top-50 invalid issuers",
        render_table(["device type", "paper", "ours"], rows),
    ]
    record_result("\n".join(lines), "tab4_device_types")

    # Shape: home routers lead; unknown second; every class represented.
    ordered = sorted(breakdown.items(), key=lambda kv: -kv[1])
    assert ordered[0][0] == "Home router/cable modem"
    assert breakdown["Home router/cable modem"] > 0.30
    assert breakdown.get("Unknown", 0) > 0.10
    for device_type in PAPER:
        assert breakdown.get(device_type, 0.0) > 0.0, f"missing class {device_type}"
