#!/usr/bin/env python3
"""§7.4 in action: inferring ISP address-reassignment policies.

Without any cooperation from ISPs, the tracked-device histories reveal who
hands out static addresses and who forcibly rotates them — simply from the
invalid certificates their customers' devices serve.

Run:  python examples/reassignment_policies.py
"""

from repro.datasets import small
from repro.stats.tables import format_pct, render_table
from repro.study import Study


def main() -> None:
    print("Building the 'small' synthetic dataset (this takes a moment)...")
    synthetic = small()
    study = Study.from_synthetic(synthetic)
    registry = synthetic.world.registry

    report = study.reassignment(min_devices_per_as=5)
    fractions = report.static_fraction_by_as
    print(f"\nASes with enough tracked devices: {len(fractions)}")
    print(
        f"ASes assigning static addresses to >=90% of devices: "
        f"{format_pct(report.fraction_of_ases_mostly_static())}"
    )

    print("\nFigure 11 — CDF of per-AS static-assignment fraction:")
    for x in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        print(f"  static fraction <= {x:4.2f}: {format_pct(report.cdf.at(x))} of ASes")

    print("\nMost dynamic ASes (forced reassignment):")
    rows = []
    for asn, fraction in sorted(fractions.items(), key=lambda kv: kv[1])[:5]:
        info = registry.get(asn)
        rows.append(
            [
                f"AS{asn}",
                info.name if info else "?",
                info.country_at(0) if info else "?",
                format_pct(fraction),
            ]
        )
    print(render_table(["asn", "name", "country", "static devices"], rows))

    print("\nMost static ASes:")
    rows = []
    for asn, fraction in sorted(fractions.items(), key=lambda kv: -kv[1])[:5]:
        info = registry.get(asn)
        rows.append(
            [
                f"AS{asn}",
                info.name if info else "?",
                info.country_at(0) if info else "?",
                format_pct(fraction),
            ]
        )
    print(render_table(["asn", "name", "country", "static devices"], rows))

    if report.highly_dynamic_ases:
        names = []
        for asn in report.highly_dynamic_ases:
            info = registry.get(asn)
            names.append(f"AS{asn} ({info.name if info else '?'})")
        print(
            "\nASes reassigning nearly every device between scans "
            "(the paper's Deutsche Telekom pattern):"
        )
        for name in names:
            print(f"  {name}")


if __name__ == "__main__":
    main()
