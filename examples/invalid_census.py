#!/usr/bin/env python3
"""§5 in action: a census of the invalid-certificate population.

Contrasts the invalid and valid populations the way the paper's comparison
section does: validity periods, observed lifetimes, key sharing, top
issuers, and device types.

Run:  python examples/invalid_census.py
"""

from repro.core.analysis.hosts import device_type_breakdown
from repro.core.analysis.issuers import self_signed_fraction, top_issuers
from repro.core.analysis.keys import key_sharing
from repro.core.analysis.longevity import lifetimes, validity_periods
from repro.datasets import small
from repro.stats.tables import format_count, format_pct, render_table
from repro.study import Study


def main() -> None:
    print("Building the 'small' synthetic dataset (this takes a moment)...")
    synthetic = small()
    dataset = synthetic.scans
    study = Study.from_synthetic(synthetic)
    invalid, valid = study.invalid, study.valid

    print(
        f"\nPopulation: {format_count(len(invalid))} invalid vs "
        f"{format_count(len(valid))} valid certificates "
        f"({format_pct(study.validation().invalid_fraction)} invalid)"
    )

    print("\nValidity periods (Figure 3):")
    invalid_validity = validity_periods(dataset, invalid)
    valid_validity = validity_periods(dataset, valid)
    rows = [
        ["valid", f"{valid_validity.median / 365:.1f}y",
         f"{valid_validity.percentile(0.9) / 365:.1f}y"],
        ["invalid", f"{invalid_validity.median / 365:.1f}y",
         f"{invalid_validity.percentile(0.9) / 365:.1f}y"],
    ]
    print(render_table(["population", "median", "p90"], rows))
    print(
        f"  invalid with negative validity: "
        f"{format_pct(invalid_validity.at(0))}"
    )

    print("\nObserved lifetimes (Figure 4):")
    invalid_life = lifetimes(dataset, invalid)
    valid_life = lifetimes(dataset, valid)
    print(f"  valid median:   {valid_life.median_days:.0f} days")
    print(f"  invalid median: {invalid_life.median_days:.0f} days")
    print(
        f"  invalid seen in a single scan: "
        f"{format_pct(invalid_life.single_scan_fraction)}"
    )

    print("\nKey sharing (Figure 6):")
    invalid_keys = key_sharing(dataset, invalid)
    valid_keys = key_sharing(dataset, valid)
    print(f"  invalid certs sharing a key: {format_pct(invalid_keys.shared_fraction)}")
    print(f"  valid certs sharing a key:   {format_pct(valid_keys.shared_fraction)}")
    print(
        f"  most-shared invalid key covers "
        f"{format_pct(invalid_keys.top_key_fraction)} of invalid certificates"
    )

    print(f"\nSelf-signed share of invalid: "
          f"{format_pct(self_signed_fraction(dataset, invalid))}")

    print("\nTop issuers (Table 1):")
    rows = [[cn, format_count(count)] for cn, count in top_issuers(dataset, invalid)]
    print("  invalid:")
    print(render_table(["issuer", "certs"], rows))
    rows = [[cn, format_count(count)] for cn, count in top_issuers(dataset, valid)]
    print("  valid:")
    print(render_table(["issuer", "certs"], rows))

    print("\nDevice types behind the top invalid issuers (Table 4):")
    breakdown = device_type_breakdown(dataset, invalid)
    rows = [
        [device_type, format_pct(fraction)]
        for device_type, fraction in sorted(breakdown.items(), key=lambda kv: -kv[1])
    ]
    print(render_table(["device type", "share"], rows))

    print("\nFigure 3, as the paper plots it (log-x CDF of validity days):")
    from repro.stats.asciichart import render_cdf

    print(render_cdf(invalid_validity, title="invalid", log_x=True, height=8))
    print(render_cdf(valid_validity, title="valid", log_x=True, height=8))


if __name__ == "__main__":
    main()
