#!/usr/bin/env python3
"""Quickstart: the paper's pipeline end-to-end in a few lines.

Builds a small synthetic Internet, scans it with both campaigns, isolates
the invalid certificates, links reissues, and tracks devices — printing
the headline numbers of each stage.

Run:  python examples/quickstart.py
"""

from repro.datasets import tiny
from repro.simtime import format_day
from repro.stats.tables import format_count, format_pct
from repro.study import Study


def main() -> None:
    print("Building and scanning a synthetic Internet (tiny preset)...")
    synthetic = tiny()
    dataset = synthetic.scans
    print(
        f"  {len(dataset.scans)} scans "
        f"({format_day(dataset.scans[0].day)} .. {format_day(dataset.scans[-1].day)}), "
        f"{format_count(dataset.n_observations)} observations, "
        f"{format_count(len(dataset.certificates))} unique certificates"
    )

    study = Study.from_synthetic(synthetic)

    # §4.2 — isolate the invalid certificates.
    validation = study.validation()
    print(f"\nValidation (§4.2):")
    print(f"  invalid: {format_pct(validation.invalid_fraction)} of all certificates")
    for status, fraction in sorted(
        validation.reason_breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"    {status.value:18s} {format_pct(fraction)}")

    # §6 — link reissued certificates into device chains.
    pipeline = study.pipeline()
    print(f"\nLinking (§6):")
    print(f"  field order: {', '.join(f.value for f in pipeline.field_order)}")
    print(
        f"  linked {format_count(pipeline.linked_certificates)} certificates "
        f"({format_pct(pipeline.linked_fraction)}) into "
        f"{format_count(len(pipeline.groups))} device groups"
    )
    improvement = study.lifetime_improvement()
    print(
        f"  single-scan fraction: {format_pct(improvement.single_scan_fraction_before)}"
        f" -> {format_pct(improvement.single_scan_fraction_after)}"
    )
    print(
        f"  mean lifetime: {improvement.mean_lifetime_before:.1f}d"
        f" -> {improvement.mean_lifetime_after:.1f}d"
    )

    # §7 — track devices.
    trackable = study.trackable()
    print(f"\nTracking (§7):")
    print(
        f"  trackable devices: {format_count(trackable.trackable_without_linking)}"
        f" without linking, {format_count(trackable.trackable_with_linking)} with"
        f" (+{format_pct(trackable.improvement_fraction)})"
    )


if __name__ == "__main__":
    main()
