#!/usr/bin/env python3
"""A security team's view: what do invalid certificates give an attacker?

Uses the handshake-collecting scanner (richer than the paper's corpora) to
audit the simulated device population the way §2's security discussion and
§5.2's footnote 10 frame it:

* devices whose certificates share private keys — extract one key,
  impersonate the fleet;
* devices that never negotiate forward-secure ciphers — one leaked key
  also decrypts *recorded historic traffic*;
* the overlap (the Lancom double jeopardy);
* and what network fingerprints add to device tracking.

Run:  python examples/fleet_security_audit.py
"""

from repro.core.analysis.keys import key_sharing
from repro.core.netlink import pfs_support, stack_fingerprints
from repro.datasets.synthetic import generate
from repro.internet.population import WorldConfig
from repro.stats.tables import format_count, format_pct, render_table
from repro.study import Study


def main() -> None:
    print("Building a handshake-collecting corpus (this takes a moment)...")
    config = WorldConfig(seed=2016, n_devices=700, n_websites=240,
                         n_generic_access=50, n_enterprise=12, n_hosting=8)
    synthetic = generate(config, scan_stride=4, collect_handshakes=True)
    dataset = synthetic.scans
    study = Study.from_synthetic(synthetic)

    invalid = study.invalid
    print(f"\nInvalid certificates in scope: {format_count(len(invalid))}")

    keys = key_sharing(dataset, invalid)
    print(
        f"\nKey reuse: {format_pct(keys.shared_fraction)} of invalid "
        f"certificates share their private key with at least one other"
    )
    print(
        f"  worst case: one key covers {format_pct(keys.top_key_fraction)} "
        f"of the invalid population (paper: the Lancom key, 6.5%)"
    )

    pfs = pfs_support(dataset, invalid)
    print(
        f"\nForward secrecy: only {format_pct(pfs.pfs_fraction)} of invalid "
        f"certificates ever negotiate a PFS cipher"
    )
    print(
        f"  double jeopardy (shared key AND no PFS): "
        f"{format_count(pfs.shared_key_without_pfs)} certificates —"
        f" one extracted key decrypts the fleet's historic traffic"
    )

    # Stack fingerprints: how exposed is the fleet to family-level
    # identification from the outside?
    index = stack_fingerprints(dataset, invalid)
    families: dict = {}
    for fingerprint, stack in index.items():
        if stack is not None:
            families[stack] = families.get(stack, 0) + 1
    print(f"\nObservable firmware families (stack fingerprints): {len(families)}")
    rows = [
        [f"v=0x{version:04x} win={window} ttl={ttl}", format_count(count)]
        for (version, window, ttl), count in sorted(
            families.items(), key=lambda kv: -kv[1]
        )[:6]
    ]
    print(render_table(["fingerprint", "invalid certs"], rows))

    print(
        "\nTakeaway: the 'secure' remote-administration pages of these"
        "\ndevices advertise, for free: their vendor (issuer strings),"
        "\ntheir firmware family (stack fingerprint), a persistent tracking"
        "\nhandle (linkable certificate features), and - for shared-key,"
        "\nnon-PFS fleets - a single point of cryptographic failure."
    )


if __name__ == "__main__":
    main()
