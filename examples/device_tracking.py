#!/usr/bin/env python3
"""§7.3 in action: following devices as they move through the Internet.

Links invalid certificates into per-device chains, then mines the tracked
population for:

* devices that changed autonomous systems (users switching ISPs);
* bulk transfers — many devices jumping between the same AS pair at the
  same time, the signature of an operator re-homing a prefix (the paper's
  Verizon → MCI events);
* cross-country movements.

Run:  python examples/device_tracking.py
"""

from repro.datasets import small
from repro.simtime import format_day
from repro.stats.tables import format_count, format_pct, render_table
from repro.study import Study


def main() -> None:
    print("Building the 'small' synthetic dataset (this takes a moment)...")
    synthetic = small()
    study = Study.from_synthetic(synthetic)
    registry = synthetic.world.registry

    movement = study.movement(bulk_threshold=8)
    print(f"\nTracked devices (observed > 1 year): {format_count(movement.tracked_devices)}")
    print(
        f"Devices that changed AS at least once: "
        f"{format_count(movement.devices_changing_as)} "
        f"({format_count(movement.total_transitions)} transitions total)"
    )
    print(
        f"  changed exactly once: {format_pct(movement.single_change_fraction)}"
        f"   most-travelled device: {movement.max_changes} changes"
    )
    print(f"Cross-country moves observed: {format_count(movement.country_moves)}")

    if movement.bulk_transfers:
        print("\nBulk transfers (operator prefix moves):")
        rows = []
        for transfer in movement.bulk_transfers[:5]:
            src = registry.get(transfer.from_asn)
            dst = registry.get(transfer.to_asn)
            rows.append(
                [
                    f"AS{transfer.from_asn} {src.name if src else '?'}",
                    f"AS{transfer.to_asn} {dst.name if dst else '?'}",
                    format_day(transfer.day),
                    transfer.device_count,
                ]
            )
        print(render_table(["from", "to", "first seen", "devices"], rows))
    else:
        print("\nNo bulk transfers above the threshold at this scale.")

    # Show one individual journey.
    movers = [
        device
        for device in study.tracked_devices()
        if device.is_trackable()
        and len({asn for _, asn in device.as_path(study.as_of) if asn}) > 1
    ]
    if movers:
        device = max(
            movers,
            key=lambda d: len({a for _, a in d.as_path(study.as_of) if a}),
        )
        print(f"\nOne device's journey ({device.device_key}):")
        last_asn = None
        for day, asn in device.as_path(study.as_of):
            if asn != last_asn and asn is not None:
                info = registry.get(asn)
                where = f"{info.name} ({info.country_at(day)})" if info else "?"
                print(f"  {format_day(day)}  AS{asn:<6d} {where}")
                last_asn = asn


if __name__ == "__main__":
    main()
